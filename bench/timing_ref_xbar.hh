/**
 * @file
 * Verbatim pre-optimization copy of the detailed memory path, kept as
 * the timed + byte-identity reference for bench/abl_timing. Do not
 * "fix" or modernize this code: its whole value is being the faithful
 * baseline the optimized path is compared against. Source: the tree
 * as of the commit preceding the timing memory-path optimization
 * round.
 */
/**
 * @file
 * Coherent crossbar connecting private L1 caches to a shared L2.
 *
 * Coherence follows gem5's "express snoop" approach: invalidations of
 * sibling L1 copies happen as direct calls during request processing,
 * with their latency charged to the requesting transaction. A snoop
 * filter tracks which upstream caches may hold each line so that
 * snoops are only charged when a sibling actually holds a copy.
 */

#ifndef G5P_BENCH_TIMING_REF_XBAR_HH
#define G5P_BENCH_TIMING_REF_XBAR_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/xbar.hh"
#include "timing_ref_cache.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/clocked_object.hh"

namespace g5p::bench::refpath
{

// The parameter structs and the coherence-state enum are shared with
// the optimized path (mem/cache.hh, mem/xbar.hh); only the machinery
// below differs. Everything else (Packet, ports, ClockedObject) is
// the production code, so both legs of the comparison exercise the
// same surrounding simulator.
using namespace g5p::mem;

class CoherentXbar : public sim::ClockedObject
{
  public:
    CoherentXbar(sim::Simulator &sim, const std::string &name,
                 const sim::ClockDomain &domain,
                 const XbarParams &params);
    ~CoherentXbar() override;

    /**
     * Create a new upstream port and associate it with @p snooper,
     * the L1 cache whose mem-side will bind to it (nullptr for
     * non-caching requestors). Returns the port.
     */
    ResponsePort &addUpstreamPort(Cache *snooper);

    /** Downstream port (binds to the L2's cpu side). */
    RequestPort &memSidePort() { return memPort_; }

    /** @{ Coherence introspection for the tester and invariants. */
    /** Bitmask of upstream ports that may hold @p addr's line. */
    std::uint32_t holdersOf(Addr addr) const;
    unsigned numUpstreamPorts() const
    { return (unsigned)upstreamPorts_.size(); }
    /** The snooping cache behind upstream port @p i (may be null). */
    Cache *snooper(unsigned i) const { return snoopers_[i]; }
    /** Lines currently tracked with more than one possible holder. */
    unsigned sharedLineCount() const;
    /** @} */

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

    void regStats() override;

  private:
    class UpstreamPort : public ResponsePort
    {
      public:
        UpstreamPort(CoherentXbar &xbar, unsigned index,
                     const std::string &name)
            : ResponsePort(name), xbar_(xbar), index_(index)
        {}
        Tick recvAtomic(Packet &pkt) override
        { return xbar_.recvAtomic(pkt, index_); }
        void recvFunctional(Packet &pkt) override
        { xbar_.recvFunctional(pkt); }
        void recvTimingReq(PacketPtr pkt) override
        { xbar_.recvTimingReq(pkt, index_); }

      private:
        CoherentXbar &xbar_;
        unsigned index_;
    };

    class MemSidePort : public RequestPort
    {
      public:
        MemSidePort(CoherentXbar &xbar, const std::string &name)
            : RequestPort(name), xbar_(xbar)
        {}
        void recvTimingResp(PacketPtr pkt) override
        { xbar_.recvTimingResp(pkt); }

      private:
        CoherentXbar &xbar_;
    };

    Tick recvAtomic(Packet &pkt, unsigned from);
    void recvFunctional(Packet &pkt);
    void recvTimingReq(PacketPtr pkt, unsigned from);
    void recvTimingResp(PacketPtr pkt);

    /**
     * Snoop-filter update + sibling invalidation for one request.
     * @return number of siblings invalidated (each costs
     *         snoopLatency) — and sets pkt's writable flag.
     */
    unsigned processSnoops(Packet &pkt, unsigned from);

    void scheduleFn(Cycles cycles, std::function<void()> fn);

    XbarParams params_;
    std::vector<std::unique_ptr<UpstreamPort>> upstreamPorts_;
    std::vector<Cache *> snoopers_;
    MemSidePort memPort_;

    /** line address -> bitmask of upstream holders. */
    std::unordered_map<Addr, std::uint32_t> snoopFilter_;

    sim::stats::Scalar transactions_;
    sim::stats::Scalar snoopInvalidations_;
    sim::stats::Scalar filterEntriesPeak_;
};

} // namespace g5p::bench::refpath

#endif // G5P_BENCH_TIMING_REF_XBAR_HH
