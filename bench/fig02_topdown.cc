/**
 * @file
 * Fig. 2: Top-Down level-1 breakdown (retiring / front-end bound /
 * bad speculation / back-end bound) for gem5 with every CPU type in
 * FS (BOOT_EXIT) and SE (PARSEC) modes, compared against the three
 * SPEC CPU2017 reference workloads — all on Intel_Xeon.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 2: Top-Down level-1 cycles breakdown on Intel_Xeon");

    core::Table table({"Config", "Retiring", "Front-End",
                       "Bad Spec", "Back-End", "IPC"});
    auto add_row = [&](const std::string &label,
                       const core::RunResult &run) {
        const auto &td = run.topdown;
        table.addRow({label, fmtPercent(td.retiring),
                      fmtPercent(td.frontendBound()),
                      fmtPercent(td.badSpeculation),
                      fmtPercent(td.backendBound),
                      fmtDouble(run.ipc, 2)});
    };

    for (const auto &row : gem5ProfileRows(cache, opts))
        add_row(row.label, *row.run);
    for (const auto &[label, run] : specProfileRows())
        add_row(label, run);

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    os << "\nPaper reference: gem5 retiring 43.5-64.7%, front-end "
          "bound 30.1-41.5%,\nback-end bound 0.9-11.3%; "
          "505.mcf_r back-end bound 53.7%.\n";
    return 0;
}
