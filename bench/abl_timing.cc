/**
 * @file
 * Ablation: the timing memory-path optimization round (PR 10) —
 * pooled packets, slab MSHRs with an open-addressed line index,
 * set-indexed packed tags, and an open-addressed snoop filter —
 * against the verbatim pre-PR path (timing_ref_cache.*,
 * timing_ref_xbar.*) embedded in this binary behind the
 * MemPathFactory seam.
 *
 * Both legs build the SAME machine: same object names, same stats
 * slots, same wiring order, same guest program. The reference leg
 * additionally flips PacketPool into faithful heap mode, so every
 * `new Packet` really is a malloc, as it was before the PR.
 *
 * Two kinds of runs per scenario:
 *
 *  - identity legs (run once, commit hooks armed): the full stats
 *    dump, a commit-trace digest (tick, pc folded per CPU), and a
 *    digest of guest physical memory must be byte-identical between
 *    the legs. This is the proof that the optimization round changed
 *    zero simulated behavior. Checked in every build, including
 *    sanitizer builds.
 *
 *  - timed legs (hook-free, interleaved, min over --reps): host ns
 *    per committed guest instruction. The TimingMemPathGate requires
 *    a >= 1.25x geomean win on {Timing 1c, Timing 4c MESI, O3 1c};
 *    Minor rides along report-only.
 *
 * Results land in BENCH_timing.json (EXPERIMENTS.md picks them up).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "mem/packet_pool.hh"
#include "mem/path_factory.hh"
#include "os/system.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

#include "timing_ref_cache.hh"
#include "timing_ref_xbar.hh"

namespace
{

using namespace g5p;
using clock_type = std::chrono::steady_clock;

// ===============================================================
// The reference leg's factory: drops the embedded pre-PR cache and
// xbar into an otherwise stock System.
// ===============================================================

class RefMemPathFactory final : public mem::MemPathFactory
{
  public:
    mem::CacheHandles
    makeCache(sim::Simulator &sim, const std::string &name,
              const sim::ClockDomain &domain,
              const mem::CacheParams &params) override
    {
        auto cache = std::make_unique<bench::refpath::Cache>(
            sim, name, domain, params);
        mem::CacheHandles handles;
        handles.cpuSide = &cache->cpuSidePort();
        handles.memSide = &cache->memSidePort();
        handles.object = std::move(cache);
        return handles;
    }

    mem::XbarHandles
    makeXbar(sim::Simulator &sim, const std::string &name,
             const sim::ClockDomain &domain,
             const mem::XbarParams &params) override
    {
        auto xbar = std::make_unique<bench::refpath::CoherentXbar>(
            sim, name, domain, params);
        mem::XbarHandles handles;
        handles.memSide = &xbar->memSidePort();
        handles.object = std::move(xbar);
        return handles;
    }

    mem::ResponsePort &
    addUpstreamPort(sim::SimObject &xbar,
                    sim::SimObject *snooper) override
    {
        return static_cast<bench::refpath::CoherentXbar &>(xbar)
            .addUpstreamPort(
                static_cast<bench::refpath::Cache *>(snooper));
    }
};

// ===============================================================
// Scenarios.
// ===============================================================

struct Scenario
{
    const char *name;
    os::CpuModel model;
    unsigned cores;
    const char *workload;
    double scale;
    std::uint64_t maxInstsPerCpu;
    bool gated; ///< counts toward the geomean gate
};

const Scenario fullScenarios[] = {
    {"timing-1c", os::CpuModel::Timing, 1, "water_nsquared",
     2.0, 200000, true},
    {"timing-4c-mesi", os::CpuModel::Timing, 4, "radix_threads",
     2.0, 80000, true},
    {"o3-1c", os::CpuModel::O3, 1, "water_nsquared",
     2.0, 60000, true},
    {"minor-1c", os::CpuModel::Minor, 1, "water_nsquared",
     2.0, 120000, false},
    {"minor-4c-mesi", os::CpuModel::Minor, 4, "radix_threads",
     2.0, 60000, false},
};

const Scenario quickScenarios[] = {
    {"timing-1c", os::CpuModel::Timing, 1, "water_nsquared",
     0.1, 4000, false},
    {"timing-2c-mesi", os::CpuModel::Timing, 2, "radix_threads",
     0.1, 4000, false},
};

// ===============================================================
// Digests.
// ===============================================================

constexpr std::uint64_t fnvSeed = 1469598103934665603ull;

std::uint64_t
fnv(std::uint64_t h, std::uint64_t x)
{
    return (h ^ x) * 1099511628211ull;
}

/** Everything that must match between the legs, byte for byte. */
struct Identity
{
    std::string stats;
    std::uint64_t commitDigest = fnvSeed;
    std::uint64_t memDigest = fnvSeed;
    Tick finalTick = 0;
    std::uint64_t insts = 0;

    bool
    operator==(const Identity &o) const
    {
        return stats == o.stats && commitDigest == o.commitDigest &&
               memDigest == o.memDigest && finalTick == o.finalTick &&
               insts == o.insts;
    }
};

/** Optimized-path observability, read back after an identity leg. */
struct Observed
{
    std::size_t poolHighWater = 0;
    std::size_t filterSize = 0;
    std::size_t filterCapacity = 0;
    std::uint64_t filterProbes = 0;
    std::uint64_t filterProbeSteps = 0;
    std::uint64_t mshrProbes = 0;
    std::uint64_t mshrProbeSteps = 0;

    double
    avgFilterProbeLen() const
    {
        return filterProbes
                   ? 1.0 + (double)filterProbeSteps /
                               (double)filterProbes
                   : 0.0;
    }
};

struct RunOut
{
    double ns = 0;
    std::uint64_t insts = 0;
};

// ===============================================================
// One leg: build, run, (optionally) digest, tear down.
// ===============================================================

/** Packets the reference legs leaked at teardown (see below). */
std::size_t refLeakedPackets = 0;

RunOut
runLeg(const Scenario &sc, bool ref_path, Identity *ident,
       Observed *obs)
{
    RefMemPathFactory ref_factory;

    // Faithful pre-PR allocation behavior for the reference leg:
    // every Packet really hits the heap. Nothing is in flight at
    // this boundary (setEnabled asserts it).
    mem::PacketPool::setEnabled(!ref_path);

    // The pre-PR path parks in-flight packets in lambda events,
    // which do not delete them when the event queue clears at
    // teardown — on the detailed OoO models a couple of speculative
    // fetches are still in flight when the guest halts, and the
    // reference leg genuinely leaks them (one of the bugs the typed
    // owning events fix). Disarm the teardown drain assert for the
    // reference leg only and write the leak off afterwards; the
    // optimized leg keeps the assert fully armed.
    if (ref_path)
        sim::setTransientResourceProbe(nullptr);

    os::SystemConfig cfg;
    cfg.cpuModel = sc.model;
    cfg.numCpus = sc.cores;
    cfg.maxInstsPerCpu = sc.maxInstsPerCpu;
    if (ref_path)
        cfg.memPath = &ref_factory;

    RunOut out;
    {
        sim::Simulator sim("system");
        auto wl = workloads::Registry::instance().create(sc.workload,
                                                         sc.scale);
        os::System system(sim, cfg, *wl);

        std::vector<std::uint64_t> commits;
        if (ident) {
            commits.assign(sc.cores, fnvSeed);
            for (unsigned i = 0; i < sc.cores; ++i) {
                system.cpu(i).setCommitHook(
                    [&commits, i](Tick tick, Addr pc,
                                  const isa::StaticInst &) {
                        commits[i] =
                            fnv(fnv(commits[i], tick), pc);
                    });
            }
        }
        if (obs)
            mem::PacketPool::resetHighWater();

        auto start = clock_type::now();
        sim::SimResult res = system.run();
        auto end = clock_type::now();
        if (sim::isSupervisedExit(res.cause)) {
            std::fprintf(stderr,
                         "error: %s leg of %s exited via %s\n",
                         ref_path ? "reference" : "optimized",
                         sc.name, sim::exitCauseName(res.cause));
            std::exit(1);
        }

        out.ns = (double)std::chrono::duration_cast<
            std::chrono::nanoseconds>(end - start).count();
        out.insts = system.totalInsts();

        if (ident) {
            std::ostringstream ss;
            sim.dumpStats(ss);
            ident->stats = ss.str();
            std::uint64_t cd = fnvSeed;
            for (std::uint64_t c : commits)
                cd = fnv(cd, c);
            ident->commitDigest = cd;
            auto &pm = system.physmem();
            std::uint64_t md = fnvSeed;
            for (Addr a = 0; a + 8 <= pm.size(); a += 8)
                md = fnv(md, pm.read(a, 8));
            ident->memDigest = md;
            ident->finalTick = sim.curTick();
            ident->insts = out.insts;
        }
        if (obs && !ref_path) {
            // Read the plain observability counters before teardown
            // (the same ones --profile runs report).
            obs->poolHighWater = mem::PacketPool::highWater();
            auto &xb = system.xbar();
            obs->filterSize = xb.filterSize();
            obs->filterCapacity = xb.filterCapacity();
            obs->filterProbes = xb.filterProbes();
            obs->filterProbeSteps = xb.filterProbeSteps();
            for (unsigned i = 0; i < sc.cores; ++i) {
                obs->mshrProbes += system.l1i(i).mshrIndexProbes() +
                                   system.l1d(i).mshrIndexProbes();
                obs->mshrProbeSteps +=
                    system.l1i(i).mshrIndexProbeSteps() +
                    system.l1d(i).mshrIndexProbeSteps();
            }
            obs->mshrProbes += system.l2().mshrIndexProbes();
            obs->mshrProbeSteps += system.l2().mshrIndexProbeSteps();
        }
    }
    // Teardown ran the pool drain guard (optimized leg) or skipped
    // it (reference leg, probe disarmed). Settle the books and
    // restore pooled mode.
    if (ref_path) {
        refLeakedPackets += mem::PacketPool::writeOffLeaked();
        sim::setTransientResourceProbe([] {
            return (std::uint64_t)mem::PacketPool::outstanding();
        });
    }
    mem::PacketPool::setEnabled(true);
    return out;
}

void
minInto(RunOut &best, const RunOut &m)
{
    if (best.insts == 0 || m.ns < best.ns)
        best = m;
}

struct ScenarioResult
{
    const Scenario *sc = nullptr;
    RunOut ref;
    RunOut opt;
    bool identityOk = false;
    Observed obs;

    double refNsPerInst() const { return ref.ns / (double)ref.insts; }
    double optNsPerInst() const { return opt.ns / (double)opt.insts; }
    double speedup() const
    { return refNsPerInst() / optNsPerInst(); }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_timing.json";
    bool gates = true;
    bool quick = false;
    int reps = 3;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    // Sanitizer instrumentation swamps the allocation/indexing
    // deltas, so the speedup gate is report-only — but the
    // byte-identity legs still run and still must pass (this is
    // exactly where ASan earns its keep: the reference leg's heap
    // packets and the optimized leg's pooled packets both get the
    // full leak/UAF treatment).
    gates = false;
    std::printf("note: sanitizer build, speedup gate report-only\n");
#endif
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--no-gates")) {
            gates = false;
        } else if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
            gates = false;
            reps = 1;
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else {
            std::printf("usage: %s [--json FILE] [--no-gates] "
                        "[--quick] [--reps N]\n", argv[0]);
            return 2;
        }
    }

    const Scenario *scenarios = quick ? quickScenarios : fullScenarios;
    std::size_t num_scenarios =
        quick ? std::size(quickScenarios) : std::size(fullScenarios);

    std::vector<ScenarioResult> results;
    bool identity_ok = true;

    for (std::size_t s = 0; s < num_scenarios; ++s) {
        const Scenario &sc = scenarios[s];
        ScenarioResult r;
        r.sc = &sc;

        // Identity legs first: commit hooks armed, full digests.
        std::fprintf(stderr, "  %-14s identity legs ...\n", sc.name);
        Identity ref_id, opt_id;
        runLeg(sc, true, &ref_id, nullptr);
        runLeg(sc, false, &opt_id, &r.obs);
        r.identityOk = ref_id == opt_id;
        if (!r.identityOk) {
            identity_ok = false;
            std::printf("FAIL: %s: optimized path diverges from "
                        "reference (stats %s, commit %s, mem %s, "
                        "tick %llu vs %llu, insts %llu vs %llu)\n",
                        sc.name,
                        ref_id.stats == opt_id.stats ? "ok" : "DIFF",
                        ref_id.commitDigest == opt_id.commitDigest
                            ? "ok" : "DIFF",
                        ref_id.memDigest == opt_id.memDigest
                            ? "ok" : "DIFF",
                        (unsigned long long)ref_id.finalTick,
                        (unsigned long long)opt_id.finalTick,
                        (unsigned long long)ref_id.insts,
                        (unsigned long long)opt_id.insts);
        }

        // Timed legs: hook-free, interleaved, min over reps.
        std::fprintf(stderr, "  %-14s timed legs (%d reps) ...\n",
                     sc.name, reps);
        runLeg(sc, true, nullptr, nullptr);  // warm both legs
        runLeg(sc, false, nullptr, nullptr);
        for (int rep = 0; rep < reps; ++rep) {
            minInto(r.ref, runLeg(sc, true, nullptr, nullptr));
            minInto(r.opt, runLeg(sc, false, nullptr, nullptr));
        }
        results.push_back(std::move(r));
    }

    // ------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------
    std::printf("\n%-16s %6s %12s %12s %9s %9s %s\n", "scenario",
                "insts", "ref ns/inst", "opt ns/inst", "speedup",
                "identity", "gate");
    std::vector<double> gated_speedups;
    for (const auto &r : results) {
        std::printf("%-16s %6llu %12.2f %12.2f %8.3fx %9s %s\n",
                    r.sc->name, (unsigned long long)r.opt.insts,
                    r.refNsPerInst(), r.optNsPerInst(), r.speedup(),
                    r.identityOk ? "ok" : "DIFF",
                    r.sc->gated ? "gated" : "report");
        if (r.sc->gated)
            gated_speedups.push_back(r.speedup());
    }
    double geomean_speedup = gated_speedups.empty()
                                 ? 1.0
                                 : bench::geomean(gated_speedups);
    if (!gated_speedups.empty())
        std::printf("%-16s %6s %12s %12s %8.3fx\n", "geomean", "",
                    "", "", geomean_speedup);

    const Observed &obs0 = results[0].obs;
    std::printf("\noptimized-path observability (identity legs):\n"
                "  packet pool high water: %zu packets  "
                "(slabs: %zu)\n",
                obs0.poolHighWater,
                mem::PacketPool::slabsAllocated());
    if (refLeakedPackets)
        std::printf("  reference legs leaked %zu packet(s) at "
                    "teardown (pre-PR event-ownership bug; written "
                    "off, optimized legs leak zero)\n",
                    refLeakedPackets);
    for (const auto &r : results) {
        std::printf("  %-16s filter %zu/%zu lines, avg probe "
                    "%.3f; mshr-index probes %llu, avg %.3f\n",
                    r.sc->name, r.obs.filterSize,
                    r.obs.filterCapacity, r.obs.avgFilterProbeLen(),
                    (unsigned long long)r.obs.mshrProbes,
                    r.obs.mshrProbes
                        ? 1.0 + (double)r.obs.mshrProbeSteps /
                                    (double)r.obs.mshrProbes
                        : 0.0);
    }

    // ------------------------------------------------------------
    // JSON artifact.
    // ------------------------------------------------------------
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"timing\",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "    {\"name\": \"%s\", \"model\": \"%s\", "
            "\"cores\": %u, \"insts\": %llu, "
            "\"ref_ns_per_inst\": %.3f, \"opt_ns_per_inst\": %.3f, "
            "\"speedup\": %.4f, \"identity\": %s, \"gated\": %s, "
            "\"pool_high_water\": %zu, "
            "\"snoop_filter_avg_probe\": %.4f}%s\n",
            r.sc->name, os::cpuModelName(r.sc->model), r.sc->cores,
            (unsigned long long)r.opt.insts, r.refNsPerInst(),
            r.optNsPerInst(), r.speedup(),
            r.identityOk ? "true" : "false",
            r.sc->gated ? "true" : "false", r.obs.poolHighWater,
            r.obs.avgFilterProbeLen(),
            i + 1 < results.size() ? "," : "");
        json << buf;
    }
    json << "  ],\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  \"geomean_speedup_gate\": %.4f,\n"
                  "  \"identity_ok\": %s,\n"
                  "  \"ref_leg_teardown_leaks\": %zu\n}\n",
                  geomean_speedup, identity_ok ? "true" : "false",
                  refLeakedPackets);
    json << buf;
    if (!json) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());

    // The acceptance gates.
    int failures = 0;
    if (!identity_ok) {
        std::printf("FAIL: memory-path behavior diverges from the "
                    "pre-PR reference\n");
        ++failures;
    }
    if (gates && geomean_speedup < 1.25) {
        std::printf("FAIL: geomean detailed-model speedup %.3fx < "
                    "1.25x\n", geomean_speedup);
        ++failures;
    }
    return failures ? 1 : 0;
}
