/**
 * @file
 * Ablation: instruction-footprint growth vs front-end pressure.
 * Sweeps the workload input scale and the CPU detail level, showing
 * how the simulator's own code footprint (functions touched, text
 * bytes, LLC occupancy) drives iCache/iTLB misses — the causal chain
 * at the heart of the paper.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Ablation: footprint vs front-end pressure (Xeon)");

    core::Table table({"CPU", "scale", "guest insts", "functions",
                       "text", "LLC occ", "ic miss/kI",
                       "itlb miss/kI", "FE bound"});
    for (os::CpuModel model :
         {os::CpuModel::Atomic, os::CpuModel::O3}) {
        for (double scale : {0.05, 0.15, 0.4}) {
            core::RunConfig cfg;
            cfg.workload = "water_nsquared";
            cfg.workloadScale = scale;
            cfg.cpuModel = model;
            cfg.platform = host::xeonConfig();
            auto run = core::runProfiledSimulation(cfg);
            table.addRow(
                {os::cpuModelName(model), fmtDouble(scale, 2),
                 std::to_string(run.guestInsts),
                 std::to_string(run.distinctFunctions),
                 fmtBytes(run.codeBytes),
                 fmtBytes(run.counters.llcOccupancyBytes),
                 fmtDouble(1000.0 * run.counters.icacheMisses /
                               run.counters.insts, 2),
                 fmtDouble(1000.0 * run.counters.itlbMisses /
                               run.counters.insts, 2),
                 fmtPercent(run.topdown.frontendBound())});
        }
    }
    table.print(os);

    os << "\nLonger runs touch more of the simulator (functions, "
          "text) and the detailed model\ntouches several times "
          "more than Atomic — which is exactly why it is "
          "front-end bound.\n";
    return 0;
}
