/**
 * @file
 * Fig. 4: breakdown of front-end *latency* bound cycles — iCache
 * misses, iTLB misses, mispredict resteers, unknown branches, clear
 * resteers — for gem5 and SPEC on Intel_Xeon.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 4: front-end latency breakdown (slots %) on "
        "Intel_Xeon");

    core::Table table({"Config", "ICache", "ITLB", "MispResteer",
                       "UnknownBr", "ClearResteer",
                       "icMiss/kI"});
    auto add_row = [&](const std::string &label,
                       const core::RunResult &run) {
        const auto &td = run.topdown;
        table.addRow({label, fmtPercent(td.feIcache),
                      fmtPercent(td.feItlb),
                      fmtPercent(td.feMispredictResteers),
                      fmtPercent(td.feUnknownBranches),
                      fmtPercent(td.feClearResteers),
                      fmtDouble(1000.0 * run.counters.icacheMisses /
                                    (double)run.counters.insts, 2)});
    };

    for (const auto &row : gem5ProfileRows(cache, opts))
        add_row(row.label, *row.run);
    for (const auto &[label, run] : specProfileRows())
        add_row(label, run);

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    // The headline ratio the paper calls out.
    core::RunConfig a;
    a.workload = "water_nsquared";
    a.platform = host::xeonConfig();
    a.cpuModel = os::CpuModel::Atomic;
    const auto &atomic = cache.get(a);
    a.cpuModel = os::CpuModel::O3;
    const auto &o3 = cache.get(a);
    double ratio =
        (1000.0 * o3.counters.icacheMisses / o3.counters.insts) /
        (1000.0 * atomic.counters.icacheMisses /
         std::max<std::uint64_t>(1, atomic.counters.insts));
    os << "\nO3 vs Atomic iCache MPKI ratio: " << fmtDouble(ratio, 1)
       << "x (paper: up to 11x)\n";
    return 0;
}
