/**
 * @file
 * Fig. 11: improvement in iTLB overhead and in retiring slots from
 * backing gem5's code with transparent huge pages, per CPU type on
 * Intel_Xeon. The paper: THP cuts iTLB overhead by ~63% on average
 * and adds 3-7% retiring.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 11: THP effect on iTLB overhead and retiring "
        "(Intel_Xeon, water_nsquared)");

    core::Table table({"CPU type", "iTLB slots base",
                       "iTLB slots THP", "iTLB reduction",
                       "Retiring delta"});
    std::vector<double> reductions;
    for (os::CpuModel model : os::allCpuModels) {
        core::RunConfig cfg;
        cfg.workload = "water_nsquared";
        cfg.cpuModel = model;
        cfg.platform = host::xeonConfig();
        const auto &base = cache.get(cfg);
        tuning::applyHugePages(cfg.tuning,
                               tuning::HugePageMode::Thp);
        const auto &thp = cache.get(cfg);

        double base_itlb = base.topdown.feItlb;
        double thp_itlb = thp.topdown.feItlb;
        double reduction = base_itlb > 0
            ? 1.0 - thp_itlb / base_itlb : 0.0;
        if (base_itlb > 0.0005)
            reductions.push_back(reduction);
        table.addRow({os::cpuModelName(model),
                      fmtPercent(base_itlb, 2),
                      fmtPercent(thp_itlb, 2),
                      fmtPercent(reduction),
                      fmtPercent(thp.topdown.retiring -
                                 base.topdown.retiring, 2)});
    }

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    if (!reductions.empty()) {
        double sum = 0;
        for (double r : reductions)
            sum += r;
        os << "\nmean iTLB-overhead reduction: "
           << fmtPercent(sum / reductions.size())
           << " (paper: ~63%)\n";
    }
    return 0;
}
