/**
 * @file
 * Fig. 5: breakdown of front-end *bandwidth* bound cycles between
 * MITE (legacy decode) and DSB (µop cache) for gem5 and SPEC on
 * Intel_Xeon. The paper: 92-97% of gem5's bandwidth stalls wait on
 * MITE.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 5: front-end bandwidth breakdown on Intel_Xeon");

    core::Table table({"Config", "MITE", "DSB", "MITE share of BW"});
    auto add_row = [&](const std::string &label,
                       const core::RunResult &run) {
        const auto &td = run.topdown;
        double bw = td.frontendBandwidth;
        table.addRow({label, fmtPercent(td.feMite),
                      fmtPercent(td.feDsb),
                      bw > 0 ? fmtPercent(td.feMite / bw) : "-"});
    };

    for (const auto &row : gem5ProfileRows(cache, opts))
        add_row(row.label, *row.run);
    for (const auto &[label, run] : specProfileRows())
        add_row(label, run);

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);
    return 0;
}
