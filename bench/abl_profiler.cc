/**
 * @file
 * Profiler-overhead ablation: the self-observability layer's contract
 * is that merely *compiling it in* is free. This bench drives the
 * event-loop microbench pattern (schedule/service churn, the hot path
 * beginService/endService sit on) through four configurations:
 *
 *   off       no profiler attached (one null-pointer test per event)
 *   disabled  profiler attached but disarmed (plus one bool test)
 *   batch     armed, one steady_clock read per 64 events
 *   trace     armed, two clock reads + one slice record per event
 *
 * Interleaved repetitions with min-of-reps reject scheduler noise.
 * Prints ns/op per configuration, writes BENCH_profiler.json, and
 * gates: disabled must be within 2% of off (the ctest
 * ProfilerOverheadGate runs exactly this binary).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "sim/eventq.hh"
#include "sim/profiler.hh"

using namespace g5p;
using sim::Event;
using sim::EventQueue;
using sim::Profiler;

namespace
{

class CountEvent : public Event
{
  public:
    explicit CountEvent(std::uint64_t &count) : count_(count) {}
    void process() override { ++count_; }

  private:
    std::uint64_t &count_;
};

enum class Mode { Off, Disabled, Batch, Trace };

constexpr int numEvents = 4096;
constexpr int rounds = 50;
constexpr std::uint64_t opsPerRep =
    (std::uint64_t)numEvents * rounds;
constexpr std::uint64_t seed = 0x9e11'0b5eULL;

/** One rep of the schedule/service pattern; returns ns/op. */
double
runRep(Mode mode, std::uint64_t &count)
{
    EventQueue eq;

    sim::ProfilerConfig pc;
    pc.enabled = true;
    if (mode == Mode::Trace)
        pc.traceSlices = true;
    Profiler prof(pc);
    if (mode != Mode::Off) {
        eq.setProfiler(&prof);
        if (mode != Mode::Disabled)
            prof.arm();
    }

    std::deque<CountEvent> events;
    for (int i = 0; i < numEvents; ++i)
        events.emplace_back(count);

    using clock = std::chrono::steady_clock;
    std::mt19937_64 rng(seed);
    auto start = clock::now();
    for (int r = 0; r < rounds; ++r) {
        Tick base = eq.curTick();
        for (auto &ev : events)
            eq.schedule(ev, base + 1 + rng() % 10000);
        eq.serviceUntil(maxTick - 1);
    }
    auto end = clock::now();

    if (prof.armed())
        prof.disarm();
    double ns = (double)std::chrono::duration_cast<
        std::chrono::nanoseconds>(end - start).count();
    return ns / (double)opsPerRep;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_profiler.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg == "--help") {
            std::printf("options: --json <path>\n");
            return 0;
        }
    }

    const struct { Mode mode; const char *name; } configs[] = {
        {Mode::Off, "off"},
        {Mode::Disabled, "disabled"},
        {Mode::Batch, "batch"},
        {Mode::Trace, "trace"},
    };
    constexpr int reps = 15;

    std::uint64_t count = 0;
    double best[4];
    std::fill(std::begin(best), std::end(best), 1e30);

    // Warm up pools/allocator, then interleave configurations so
    // frequency ramps and background noise hit all of them alike.
    for (const auto &cfg : configs)
        runRep(cfg.mode, count);
    for (int rep = 0; rep < reps; ++rep)
        for (int c = 0; c < 4; ++c)
            best[c] = std::min(best[c],
                               runRep(configs[c].mode, count));

    std::printf("# abl_profiler: event-loop cost by profiler state "
                "(min of %d reps)\n", reps);
    std::printf("%-10s %12s %10s\n", "config", "ns/op", "vs off");
    for (int c = 0; c < 4; ++c)
        std::printf("%-10s %12.2f %9.3fx\n", configs[c].name,
                    best[c], best[c] / best[0]);

    double disabled_ratio = best[1] / best[0];

    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"profiler\",\n  \"configs\": [\n";
    for (int c = 0; c < 4; ++c) {
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                      "\"ratio_vs_off\": %.4f}%s\n",
                      configs[c].name, best[c], best[c] / best[0],
                      c + 1 < 4 ? "," : "");
        json << buf;
    }
    json << "  ],\n";
    {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "  \"disabled_overhead_gate\": %.4f\n",
                      disabled_ratio);
        json << buf;
    }
    json << "}\n";
    if (!json) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());

    // The acceptance gate: compiled-in-but-disabled must cost <= 2%.
    if (disabled_ratio > 1.02) {
        std::printf("FAIL: disabled-profiler overhead %.3fx > "
                    "1.02x\n", disabled_ratio);
        return 1;
    }
    return 0;
}
