/**
 * @file
 * Fig. 14 (+ Table I): gem5 simulation speedup on the FireSim-hosted
 * SoC as the host's L1/L2 geometry is swept, running the Sieve of
 * Eratosthenes (the paper's FireSim workload). Configurations are
 * written (i$KB/assoc : d$KB/assoc : L2KB/assoc); L1 sets stay at 64
 * (the VIPT constraint), so capacity scales with associativity.
 *
 * The paper's headline: 16KB L1s beat the 8KB baseline by 30/25/18%
 * (Atomic/Timing/O3); the 64KB/16-way config by 68.7/68.2/43.8%;
 * doubling L2 from 1MB to 2MB changes almost nothing; and the
 * abstract's 32KB configuration wins by 31-61%.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os, "Table I: FireSim-hosted SoC (base)");
    {
        auto cfg = host::firesimConfig();
        core::Table table({"Parameter", "Value"});
        table.addRow({"Core frequency",
                      fmtDouble(cfg.freqGHz, 1) + "GHz"});
        table.addRow({"Superscalar width",
                      std::to_string(cfg.dispatchWidth) + "-wide"});
        table.addRow({"L1I / L1D",
                      fmtBytes(cfg.icache.sizeBytes) + " / " +
                          fmtBytes(cfg.dcache.sizeBytes)});
        table.addRow({"L2", fmtBytes(cfg.l2.sizeBytes)});
        table.addRow({"BTB entries",
                      std::to_string(cfg.bpred.btbEntries)});
        table.addRow({"DRAM latency",
                      fmtDouble(cfg.memLatencyNs, 0) + "ns"});
        table.print(os);
    }

    struct SweepPoint
    {
        unsigned i_kb, i_w, d_kb, d_w, l2_kb, l2_w;
    };
    std::vector<SweepPoint> sweep{
        {8, 2, 8, 2, 512, 8},       // baseline
        {16, 4, 16, 4, 512, 8},
        {32, 8, 32, 8, 512, 8},     // the abstract's config
        {32, 8, 32, 8, 1024, 8},
        {32, 8, 32, 8, 2048, 16},
        {64, 16, 64, 16, 512, 8},   // best in the paper
    };

    // Prefetch the geometry x model sweep on the worker pool
    // (--jobs N).
    {
        std::vector<core::RunConfig> points;
        for (const auto &p : sweep) {
            for (auto model : {os::CpuModel::Atomic,
                               os::CpuModel::Timing,
                               os::CpuModel::O3}) {
                core::RunConfig cfg;
                cfg.workload = "sieve";
                cfg.cpuModel = model;
                cfg.platform = host::firesimCacheConfig(
                    p.i_kb, p.i_w, p.d_kb, p.d_w, p.l2_kb, p.l2_w);
                points.push_back(cfg);
            }
        }
        cache.prefetch(std::move(points));
    }

    core::printBanner(os,
        "Fig. 14: simulation speedup vs the 8KB/2:8KB/2:512KB/8 "
        "baseline (sieve)");

    std::vector<std::string> headers{"Config (i$:d$:L2)"};
    std::vector<os::CpuModel> models{os::CpuModel::Atomic,
                                     os::CpuModel::Timing,
                                     os::CpuModel::O3};
    for (auto model : models)
        headers.push_back(os::cpuModelName(model));
    core::Table table(headers);

    std::map<std::string, double> baseline;
    for (const auto &p : sweep) {
        auto platform = host::firesimCacheConfig(
            p.i_kb, p.i_w, p.d_kb, p.d_w, p.l2_kb, p.l2_w);
        std::string label = std::to_string(p.i_kb) + "KB/" +
            std::to_string(p.i_w) + ":" + std::to_string(p.d_kb) +
            "KB/" + std::to_string(p.d_w) + ":" +
            std::to_string(p.l2_kb) + "KB/" +
            std::to_string(p.l2_w);
        std::vector<std::string> row{label};
        for (auto model : models) {
            core::RunConfig cfg;
            cfg.workload = "sieve";
            cfg.cpuModel = model;
            cfg.platform = platform;
            double seconds = cache.get(cfg).hostSeconds;
            std::string key = os::cpuModelName(model);
            if (!baseline.count(key)) {
                baseline[key] = seconds;
                row.push_back("1.000 (base)");
            } else {
                double speedup = baseline[key] / seconds;
                row.push_back(fmtDouble(speedup, 3) + " (" +
                              fmtPercent(speedup - 1.0) + ")");
            }
        }
        table.addRow(row);
    }

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    os << "\nPaper reference: 16KB +30/25/18%; 64KB/16 "
          "+68.7/68.2/43.8%; 1MB->2MB L2 ~0;\n32KB L1s beat the "
          "8KB baseline by 31-61% (the abstract's claim).\n";
    return 0;
}
