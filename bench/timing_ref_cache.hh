/**
 * @file
 * Verbatim pre-optimization copy of the detailed memory path, kept as
 * the timed + byte-identity reference for bench/abl_timing. Do not
 * "fix" or modernize this code: its whole value is being the faithful
 * baseline the optimized path is compared against. Source: the tree
 * as of the commit preceding the timing memory-path optimization
 * round.
 */
/**
 * @file
 * Set-associative write-back cache with MSHRs, modeled on gem5's
 * classic `Cache`. Used for guest L1I, L1D, and the shared L2.
 *
 * Tags-only timing model: data lives in PhysicalMemory (see
 * mem/packet.hh). Lines track valid/dirty/writable; misses allocate
 * MSHRs that coalesce same-line requests; dirty victims generate
 * WritebackDirty packets downstream. Coherence between sibling L1s is
 * invalidation-based, orchestrated by the CoherentXbar.
 *
 * The valid/writable/dirty bits encode a MESI state machine:
 * Invalid (!valid), Shared (valid, !writable), Exclusive (valid,
 * writable, !dirty), Modified (valid, writable, dirty). A write to a
 * Shared line raises an UpgradeReq (ownership only, no data); the
 * line stays readable while the upgrade is in flight (transient SM),
 * and a crossing invalidation downgrades the upgrade into a full
 * ReadEx refill (transient SM -> IM).
 */

#ifndef G5P_BENCH_TIMING_REF_CACHE_HH
#define G5P_BENCH_TIMING_REF_CACHE_HH

#include <functional>
#include <list>
#include <vector>

#include "mem/cache.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/clocked_object.hh"

namespace g5p::bench::refpath
{

// The parameter structs and the coherence-state enum are shared with
// the optimized path (mem/cache.hh, mem/xbar.hh); only the machinery
// below differs. Everything else (Packet, ports, ClockedObject) is
// the production code, so both legs of the comparison exercise the
// same surrounding simulator.
using namespace g5p::mem;

class Cache : public sim::ClockedObject
{
  public:
    Cache(sim::Simulator &sim, const std::string &name,
          const sim::ClockDomain &domain, const CacheParams &params);
    ~Cache() override;

    /** Upstream (CPU or L1) side. */
    ResponsePort &cpuSidePort() { return cpuPort_; }

    /** Downstream (xbar, L2, or DRAM) side. */
    RequestPort &memSidePort() { return memPort_; }

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /** True if the line containing @p addr is present. */
    bool isCached(Addr addr) const;

    /** MESI state of the line containing @p addr (no LRU touch). */
    CoherState coherenceStateOf(Addr addr) const;

    /** Coherence: drop the line (invalidate from a sibling). */
    void invalidateLine(Addr addr);

    /** True while misses or deferred requests are outstanding. */
    bool hasPendingMisses() const
    { return !mshrs_.empty() || !deferred_.empty(); }

    /** Upgrades that lost the race to a crossing invalidation. */
    std::uint64_t upgradeRaces() const { return upgradeRaces_; }

    /** Fills whose permission grant a sibling stole in flight. */
    std::uint64_t fillRaces() const { return fillRaces_; }

    /**
     * Checkpoint tags, line state and LRU clock. MSHRs and deferred
     * requests must be drained (quiescent point); asserted.
     */
    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(const sim::CheckpointIn &cp) override;

    void regStats() override;

    /** @{ Raw counters for tests and reports. */
    std::uint64_t hits() const { return (std::uint64_t)hits_.value(); }
    std::uint64_t misses() const
    { return (std::uint64_t)misses_.value(); }
    std::uint64_t writebacks() const
    { return (std::uint64_t)writebacks_.value(); }
    /** @} */

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        bool writable = false;
        std::uint64_t lastUsed = 0; ///< LRU timestamp
    };

    struct Mshr
    {
        Addr lineAddr = 0;
        bool issued = false;
        bool needsExclusive = false;
        bool isUpgrade = false; ///< transient SM: fill is ownership-only
        /** A sibling's exclusive request raced ahead of the pending
         *  fill: its permission grant (and our snoop-filter bit) is
         *  void; the response drains its targets uncached instead of
         *  filling (re-requesting could livelock: two cores would
         *  steal each other's in-flight fills forever). */
        bool stolen = false;
        std::vector<PacketPtr> targets;
    };

    class CpuSidePort : public ResponsePort
    {
      public:
        CpuSidePort(Cache &cache, const std::string &name)
            : ResponsePort(name), cache_(cache)
        {}
        Tick recvAtomic(Packet &pkt) override
        { return cache_.recvAtomic(pkt); }
        void recvFunctional(Packet &pkt) override
        { cache_.recvFunctional(pkt); }
        void recvTimingReq(PacketPtr pkt) override
        { cache_.recvTimingReq(pkt); }

      private:
        Cache &cache_;
    };

    class MemSidePort : public RequestPort
    {
      public:
        MemSidePort(Cache &cache, const std::string &name)
            : RequestPort(name), cache_(cache)
        {}
        void recvTimingResp(PacketPtr pkt) override
        { cache_.recvTimingResp(pkt); }

      private:
        Cache &cache_;
    };

    /** @{ Protocol entry points (via the ports). */
    Tick recvAtomic(Packet &pkt);
    void recvFunctional(Packet &pkt);
    void recvTimingReq(PacketPtr pkt);
    void recvTimingResp(PacketPtr pkt);
    /** @} */

    /** Tag lookup; returns the line or nullptr. Touches LRU on hit. */
    Line *lookup(Addr addr, bool update_lru);
    const Line *lookupConst(Addr addr) const;

    /** Pick a victim in the set of @p addr (invalid first, else LRU). */
    Line &victimFor(Addr addr);

    /** Install @p addr over the victim; emits writeback if needed. */
    Line &insertLine(Addr addr, bool writable, bool timing);

    /** Record a host-side touch of the tag entry for @p line. */
    void touchTagState(const Line &line) const;

    /** Find the MSHR covering @p line_addr, or nullptr. */
    Mshr *findMshr(Addr line_addr);

    /** Handle one demand request after the tag-lookup delay. */
    void satisfyTiming(PacketPtr pkt);

    /** Drain an MSHR's coalesced targets against a present line. */
    void completeMshr(Addr line_addr, Line &line);

    /** Drain a stolen MSHR's targets without installing the line
     *  (data comes from the functional backing store regardless). */
    void completeUncached(Addr line_addr);

    /** Schedule @p fn after @p cycles on this cache's clock. */
    void scheduleFn(Cycles cycles, std::function<void()> fn);

    CacheParams params_;
    unsigned numSets_;
    std::vector<Line> lines_;
    std::uint64_t lruCounter_ = 0;
    std::list<Mshr> mshrs_;
    std::list<PacketPtr> deferred_; ///< requests waiting for an MSHR

    CpuSidePort cpuPort_;
    MemSidePort memPort_;

    sim::stats::Scalar hits_;
    sim::stats::Scalar misses_;
    sim::stats::Scalar mshrHits_;
    sim::stats::Scalar mshrBlocked_;
    sim::stats::Scalar writebacks_;
    sim::stats::Scalar invalidations_;
    sim::stats::Scalar upgradeMisses_;
    sim::stats::Formula missRate_;

    /** @{ Plain counters (not stat lines: keeps single-core stat
     *  text identical) — coherence races, for the tester. */
    std::uint64_t upgradeRaces_ = 0;
    std::uint64_t fillRaces_ = 0;
    /** @} */
};

} // namespace g5p::bench::refpath

#endif // G5P_BENCH_TIMING_REF_CACHE_HH
