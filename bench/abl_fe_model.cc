/**
 * @file
 * Ablation: front-end design choices vs gem5 simulation speed —
 * DSB capacity (none / half / Cascade-Lake / huge), legacy-decode
 * width, and indirect-predictor capacity. Quantifies which of the
 * paper's §VI "fine-grained, tightly coupled" acceleration targets
 * would actually pay off.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::RunConfig base;
    base.workload = "water_nsquared";
    base.cpuModel = os::CpuModel::O3;
    base.platform = host::xeonConfig();
    double base_sec = cache.get(base).hostSeconds;

    core::printBanner(os,
        "Ablation: DSB capacity vs gem5 sim time (O3, Xeon)");
    {
        core::Table table({"DSB windows", "DSB coverage",
                           "norm. time"});
        for (unsigned windows : {0u, 128u, 256u, 2048u}) {
            core::RunConfig cfg = base;
            cfg.platform.dsb.windows = windows;
            if (windows == 0)
                cfg.platform.dsbUopsPerCycle = 0;
            const auto &run = cache.get(cfg);
            table.addRow({std::to_string(windows),
                          fmtPercent(run.counters.dsbCoverage()),
                          fmtDouble(run.hostSeconds / base_sec,
                                    3)});
        }
        table.print(os);
    }

    core::printBanner(os,
        "Ablation: legacy-decode (MITE) width vs gem5 sim time");
    {
        core::Table table({"MITE uops/cycle", "FE bandwidth slots",
                           "norm. time"});
        for (double width : {1.6, 2.6, 4.0, 6.0}) {
            core::RunConfig cfg = base;
            cfg.platform.miteUopsPerCycle = width;
            const auto &run = cache.get(cfg);
            table.addRow({fmtDouble(width, 1),
                          fmtPercent(
                              run.topdown.frontendBandwidth),
                          fmtDouble(run.hostSeconds / base_sec,
                                    3)});
        }
        table.print(os);
    }

    core::printBanner(os,
        "Ablation: indirect-predictor entries vs mispredicts "
        "(virtual dispatch pressure)");
    {
        core::Table table({"Entries", "mispredicts/kI",
                           "norm. time"});
        for (unsigned entries : {64u, 512u, 4096u, 16384u}) {
            core::RunConfig cfg = base;
            cfg.platform.bpred.indirectEntries = entries;
            const auto &run = cache.get(cfg);
            table.addRow({std::to_string(entries),
                          fmtDouble(1000.0 *
                                        run.counters.mispredicts /
                                        run.counters.insts, 2),
                          fmtDouble(run.hostSeconds / base_sec,
                                    3)});
        }
        table.print(os);
    }
    return 0;
}
