/**
 * @file
 * Ablation: what does checkpoint/restore cost, per CPU model?
 *
 * For each model the bench runs a workload halfway, advances to the
 * nearest quiescent point, serializes, restores into a fresh machine,
 * and runs both to completion. It reports the tick slack needed to
 * reach quiescence (the only simulated-time "cost" of the passive
 * scheme), the checkpoint size and section count, host-side
 * serialize/restore latency, and verifies the resumed run is
 * bit-identical (instruction count and memory digest).
 *
 * The paper's boot-exit methodology depends on exactly this: skip the
 * uninteresting prefix once, then fan out detailed simulations from
 * the stored state.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "base/str.hh"
#include "os/system.hh"
#include "sim/serialize.hh"
#include "workloads/workload.hh"

using namespace g5p;

namespace
{

struct Row
{
    const char *model;
    Tick ckptSlackTicks;     ///< ticks advanced to reach quiescence
    std::size_t bytes;
    std::size_t sections;
    double serializeUs;
    double restoreUs;
    bool identical;
};

double
usSince(std::chrono::steady_clock::time_point start)
{
    return (double)std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
               .count() /
           1e3;
}

Row
measure(os::CpuModel model, const std::string &workload, double scale)
{
    auto &reg = workloads::Registry::instance();
    os::SystemConfig cfg;
    cfg.cpuModel = model;

    // Reference: uninterrupted run.
    std::uint64_t ref_insts = 0, ref_digest = 0;
    Tick final_tick = 0;
    {
        auto wl = reg.create(workload, scale);
        sim::Simulator sim("system");
        os::System system(sim, cfg, *wl);
        auto res = system.run();
        final_tick = res.tick;
        ref_insts = system.totalInsts();
        ref_digest = system.physmem().contentDigest();
    }

    Row row{os::cpuModelName(model), 0, 0, 0, 0, 0, false};

    // Checkpoint at the halfway tick.
    sim::CheckpointOut out;
    {
        auto wl = reg.create(workload, scale);
        sim::Simulator sim("system");
        os::System system(sim, cfg, *wl);
        system.run(final_tick / 2);
        Tick before = sim.curTick();
        sim.advanceToQuiescence();
        row.ckptSlackTicks = sim.curTick() - before;

        auto start = std::chrono::steady_clock::now();
        sim.takeCheckpoint(out);
        row.serializeUs = usSince(start);
    }
    std::string text = out.toText();
    row.bytes = text.size();
    row.sections = out.sections().size();

    // Restore into a fresh machine and finish.
    {
        auto wl = reg.create(workload, scale);
        sim::Simulator sim("system");
        os::System system(sim, cfg, *wl);

        auto start = std::chrono::steady_clock::now();
        auto in = sim::CheckpointIn::fromText(text);
        sim.restoreCheckpoint(in);
        row.restoreUs = usSince(start);

        system.run();
        row.identical = system.totalInsts() == ref_insts &&
                        system.physmem().contentDigest() == ref_digest;
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "water_nsquared";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    std::cout << "Checkpoint/restore cost ablation — " << workload
              << " (scale " << fmtDouble(scale, 2) << "), "
              << "checkpoint at the halfway tick\n\n";
    std::cout << padLeft("model", 8) << padLeft("slack(ticks)", 14)
              << padLeft("size", 10) << padLeft("sections", 10)
              << padLeft("ser(us)", 10) << padLeft("rest(us)", 10)
              << padLeft("identical", 11) << "\n";

    bool all_ok = true;
    for (os::CpuModel model : os::allCpuModels) {
        Row r = measure(model, workload, scale);
        all_ok = all_ok && r.identical;
        std::cout << padLeft(r.model, 8)
                  << padLeft(std::to_string(r.ckptSlackTicks), 14)
                  << padLeft(fmtBytes(r.bytes), 10)
                  << padLeft(std::to_string(r.sections), 10)
                  << padLeft(fmtDouble(r.serializeUs, 1), 10)
                  << padLeft(fmtDouble(r.restoreUs, 1), 10)
                  << padLeft(r.identical ? "yes" : "NO", 11) << "\n";
    }

    std::cout << "\nslack = simulated ticks advanced to reach a "
                 "quiescent point (no transient\nevents in flight); "
                 "the passive scheme never skips or reorders work, "
                 "so the\nresumed run must be bit-identical.\n";
    if (!all_ok) {
        std::cout << "\nERROR: a resumed run diverged from the "
                     "uninterrupted reference\n";
        return 1;
    }
    return 0;
}
