/**
 * @file
 * Fig. 9: LLC occupancy and DRAM bandwidth utilization of one gem5
 * process per CPU model in FS and SE modes on Intel_Xeon. The paper:
 * occupancy 255KB-3.1MB growing with detail; DRAM bandwidth
 * negligible in both modes.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 9: LLC occupancy and DRAM bandwidth on Intel_Xeon");

    core::Table table({"Config", "LLC occupancy", "DRAM GB/s",
                       "DRAM util%"});
    for (os::SimMode mode : {os::SimMode::SE, os::SimMode::FS}) {
        for (os::CpuModel model : os::allCpuModels) {
            core::RunConfig cfg;
            cfg.workload = "water_nsquared";
            cfg.cpuModel = model;
            cfg.mode = mode;
            cfg.platform = host::xeonConfig();
            const auto &run = cache.get(cfg);
            double gbs = run.hostSeconds > 0
                ? run.counters.dramBytes / 1e9 / run.hostSeconds
                : 0.0;
            table.addRow({std::string(os::cpuModelName(model)) +
                              "_" + os::simModeName(mode),
                          fmtBytes(run.counters.llcOccupancyBytes),
                          fmtDouble(gbs, 3),
                          fmtPercent(gbs /
                                     cfg.platform.memBwGBs)});
        }
    }

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    os << "\nPaper reference: occupancy 255KB-3.1MB rising with "
          "detail; bandwidth negligible\n(the Xeon has 141 GB/s "
          "available).\n";
    return 0;
}
