/**
 * @file
 * PR 9 proof bench: the devirtualized dispatch table plus hot/cold
 * text layout must beat mg5's own pre-PR front end, measured both
 * ways the paper measures gem5:
 *
 *  1. Wall-clock. A reference queue (`ref::Queue`) embedded in this
 *     TU reproduces the pre-PR service loop faithfully — identical
 *     4-ary heap, chain promotion, bottom-up pop, FIFO-tie sequence
 *     numbers — but dispatches every event through virtual
 *     `process()` and carries no hot/cold annotations, exactly the
 *     shape `EventQueue` had before this PR. The same three
 *     scenarios (mixed-kind tick storm, same-tick burst drain,
 *     transient response storm) run on both queues with identical
 *     seeds; per-scenario order digests must match bit-for-bit, and
 *     the geomean speedup must clear 1.10x (the FrontendDispatchGate
 *     ctest runs exactly this binary). The baseline TU is compiled
 *     with -fno-devirtualize* (CMakeLists): in real gem5 the
 *     process() targets are spread across the build and the compiler
 *     cannot speculatively devirtualize them, so letting it do so
 *     here — where all types are TU-local — would make the baseline
 *     unrealistically fast, not the other way around. The baseline
 *     pays the same profiler tests, trace scopes, asserts and
 *     counter upkeep the pre-PR queue paid — leaving them out would
 *     flatter the reference — while the kind bookkeeping this PR
 *     added stays a real-queue-only cost.
 *
 *  2. Modeled Top-Down. The hostsim pipeline marks event-entry trace
 *     scopes virtual or direct via sim::modeledDispatchVirtual();
 *     running the same profiled simulation with the flag on
 *     (gem5-faithful "before") and off (table-dispatch "after") must
 *     show front-end-bound% dropping, the fig. 2/3-style evidence
 *     that the optimization attacks the bottleneck the paper
 *     diagnosed rather than some accidental slack.
 *
 * Writes BENCH_frontend.json. Options: --json <path>, --no-gates,
 * --quick.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "sim/event_dispatch.hh"
#include "sim/eventq.hh"
#include "trace/recorder.hh"

using namespace g5p;

// ===============================================================
// The pre-PR reference front end.
// ===============================================================

namespace ref
{

/** Pre-PR event: virtual process(), no kind byte consulted. */
class Event
{
  public:
    explicit Event(std::int16_t prio = 0) : priority_(prio) {}

    virtual ~Event() = default;
    virtual void process() = 0;

    static constexpr std::size_t invalidIndex = ~(std::size_t)0;
    static constexpr std::size_t chainedIndex = invalidIndex - 1;

    Tick when_ = 0;
    std::uint64_t sequence_ = 0;
    std::size_t heapIndex_ = invalidIndex;
    Event *chainPrev_ = nullptr;
    Event *chainNext_ = nullptr;
    std::int16_t priority_;
    bool autoDelete_ = false;

    bool scheduled() const { return heapIndex_ != invalidIndex; }
};

/**
 * Faithful copy of EventQueue's scheduling core as it stood before
 * the dispatch table: same heap arity, same chain-append memo, same
 * bottom-up popTop, same sequence-number FIFO ties — service order
 * is bit-identical to the real queue (the digests prove it). The
 * pre-PR queue also paid scope instrumentation per schedule and per
 * serviceUntil, liveness asserts, the scheduled/serviced counters
 * and the profiler attachment test on every event — the reference
 * pays all of it too, or the baseline is flattered (the same rule
 * abl_eventq's embedded reference follows). The only differences
 * left are the dispatch call, the kind bookkeeping the new queue
 * added, and the missing layout annotations, i.e. precisely what
 * this PR changed.
 */
class Queue
{
  public:
    Queue()
        // The pre-PR serviceTop tested the attached profiler around
        // every dispatch. getenv keeps the pointer opaque so the
        // compiler cannot prove the branches dead and delete them.
        : profiler_(std::getenv("G5P_REF_PROFILER"))
    {
    }

    G5P_NOINLINE void
    schedule(Event &event, Tick when)
    {
        G5P_TRACE_SCOPE("RefQueue::schedule", EventLoop, false);
        g5p_assert(!event.scheduled(), "event already scheduled");
        g5p_assert(when >= curTick_, "scheduling in the past");
        event.when_ = when;
        event.sequence_ = nextSequence_++;
        Event *tail = lastScheduled_;
        if (tail && tail->when_ == when &&
            tail->priority_ == event.priority_) {
            event.heapIndex_ = Event::chainedIndex;
            event.chainPrev_ = tail;
            tail->chainNext_ = &event;
            ++chainedCount_;
        } else {
            event.heapIndex_ = heap_.size();
            heap_.push_back(Node{when, event.sequence_, &event,
                                 event.priority_});
            siftUp(event.heapIndex_);
        }
        lastScheduled_ = &event;
        ++numScheduled_;
        if (event.autoDelete_)
            ++transientScheduled_;
    }

    G5P_NOINLINE std::uint64_t
    serviceUntil(Tick limit)
    {
        G5P_TRACE_SCOPE("RefQueue::serviceUntil", EventLoop, false);
        std::uint64_t serviced = 0;
        while (!heap_.empty() && heap_.front().when <= limit) {
            serviceTop();
            ++serviced;
        }
        return serviced;
    }

    Tick curTick() const { return curTick_; }
    bool empty() const { return heap_.empty(); }

  private:
    static constexpr std::size_t arity = 4;

    struct Node
    {
        Tick when;
        std::uint64_t sequence;
        Event *event;
        std::int16_t priority;
    };

    static bool
    before(const Node &a, const Node &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.sequence < b.sequence;
    }

    void
    siftUp(std::size_t slot)
    {
        Node node = heap_[slot];
        while (slot > 0) {
            std::size_t parent = (slot - 1) / arity;
            if (!before(node, heap_[parent]))
                break;
            heap_[slot] = heap_[parent];
            heap_[slot].event->heapIndex_ = slot;
            slot = parent;
        }
        heap_[slot] = node;
        node.event->heapIndex_ = slot;
    }

    void
    promoteChained(Event *head, std::size_t slot)
    {
        Event *next = head->chainNext_;
        head->chainNext_ = nullptr;
        next->chainPrev_ = nullptr;
        --chainedCount_;
        next->heapIndex_ = slot;
        heap_[slot] = Node{next->when_, next->sequence_, next,
                           next->priority_};
    }

    void
    popTop()
    {
        Event *top = heap_.front().event;
        if (top->autoDelete_)
            --transientScheduled_;
        top->heapIndex_ = Event::invalidIndex;
        if (lastScheduled_ == top)
            lastScheduled_ = nullptr;
        if (top->chainNext_) {
            promoteChained(top, 0);
            return;
        }
        Node last = heap_.back();
        heap_.pop_back();
        const std::size_t count = heap_.size();
        if (count == 0)
            return;
        std::size_t hole = 0;
        while (true) {
            std::size_t first = hole * arity + 1;
            if (first >= count)
                break;
            std::size_t end = first + arity < count ? first + arity
                                                    : count;
            std::size_t best = first;
            for (std::size_t child = first + 1; child < end;
                 ++child) {
                if (before(heap_[child], heap_[best]))
                    best = child;
            }
            heap_[hole] = heap_[best];
            heap_[hole].event->heapIndex_ = hole;
            hole = best;
        }
        heap_[hole] = last;
        last.event->heapIndex_ = hole;
        siftUp(hole);
    }

    G5P_NOINLINE static void
    profilerSink(Event *event, Tick when, std::size_t depth)
    {
        // Never reached (profiler_ is null in every run); exists so
        // the attachment branches below have a real call behind them,
        // like EventProfiler::beginService/endService do.
        std::fprintf(stderr, "ref profiler hook %p %llu %zu\n",
                     (void *)event, (unsigned long long)when, depth);
    }

    void
    serviceTop()
    {
        Event *event = heap_.front().event;
        Tick when = heap_.front().when;
        g5p_assert(when >= curTick_, "event queue went backwards");
        if (profiler_)
            profilerSink(event, when, heap_.size());
        popTop();
        curTick_ = when;
        ++numServiced_;
        bool auto_delete = event->autoDelete_;
        // The pre-PR dispatch: one megamorphic virtual call per
        // serviced event.
        event->process();
        if (profiler_)
            profilerSink(nullptr, 0, 0);
        if (auto_delete && !event->scheduled())
            delete event;
    }

    std::vector<Node> heap_;
    Event *lastScheduled_ = nullptr;
    const char *profiler_ = nullptr;
    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t numScheduled_ = 0;
    std::uint64_t numServiced_ = 0;
    std::uint64_t chainedCount_ = 0;
    std::size_t transientScheduled_ = 0;
};

} // namespace ref

// ===============================================================
// Scenario workloads, instantiated for both queues.
// ===============================================================

namespace
{

/** Deterministic per-event stride source (identical both sides). */
struct Lcg
{
    std::uint64_t state;
    std::uint64_t
    next()
    {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    }
};

/** Order-sensitive digest: proves bit-identical service order. */
struct Digest
{
    std::uint64_t value = 0x243f'6a88'85a3'08d3ULL;
    void
    fold(std::uint64_t token, std::uint64_t tick)
    {
        value = (value << 7 | value >> 57) ^ (token * 0x9e3779b97f4a7c15ULL + tick);
    }
};

constexpr int numKinds = 8;

/** Shared per-event behaviour: fire, fold digest, reschedule. */
struct StormState
{
    Digest *digest;
    Lcg lcg;
    std::uint64_t token;
    int firesLeft;
};

/** Table-dispatch side: one registered kind per K. */
template <int K>
class StormEvent : public sim::Event
{
  public:
    StormEvent(sim::EventQueue &eq, StormState st)
        : eq_(eq), st_(st)
    {
        setKind(sim::registeredEventKind<StormEvent>(kindLabel()));
    }

    void
    invoke()
    {
        st_.digest->fold(st_.token + K, eq_.curTick());
        if (--st_.firesLeft > 0)
            eq_.schedule(*this, eq_.curTick() + 1 +
                         st_.lcg.next() % 1000);
    }

    void process() override { invoke(); }

  private:
    static const char *
    kindLabel()
    {
        return __PRETTY_FUNCTION__;
    }

    sim::EventQueue &eq_;
    StormState st_;
};

/** Virtual side: same behaviour, classic process() override. */
template <int K>
class RefStormEvent : public ref::Event
{
  public:
    RefStormEvent(ref::Queue &eq, StormState st) : eq_(eq), st_(st)
    {}

    void
    process() override
    {
        st_.digest->fold(st_.token + K, eq_.curTick());
        if (--st_.firesLeft > 0)
            eq_.schedule(*this, eq_.curTick() + 1 +
                         st_.lcg.next() % 1000);
    }

  private:
    ref::Queue &eq_;
    StormState st_;
};

struct ScenarioParams
{
    int stormEvents = 256;
    int stormFires = 1500;
    int burstWidth = 64;
    int burstRounds = 4000;
    int callbackChain = 200000;
};

/** @{ Scenario 1: mixed-kind tick storm (self-rescheduling mix). */
template <typename QueueT, typename BaseT, template <int> class EventT>
std::uint64_t
runStorm(const ScenarioParams &p, Digest &digest)
{
    QueueT eq;
    std::vector<std::unique_ptr<BaseT>> events;
    events.reserve(p.stormEvents);
    Lcg seeder{0x5eedULL};
    for (int i = 0; i < p.stormEvents; ++i) {
        StormState st{&digest, Lcg{seeder.next()},
                      (std::uint64_t)i, p.stormFires};
        switch (i % numKinds) {
          case 0: events.emplace_back(new EventT<0>(eq, st)); break;
          case 1: events.emplace_back(new EventT<1>(eq, st)); break;
          case 2: events.emplace_back(new EventT<2>(eq, st)); break;
          case 3: events.emplace_back(new EventT<3>(eq, st)); break;
          case 4: events.emplace_back(new EventT<4>(eq, st)); break;
          case 5: events.emplace_back(new EventT<5>(eq, st)); break;
          case 6: events.emplace_back(new EventT<6>(eq, st)); break;
          default: events.emplace_back(new EventT<7>(eq, st)); break;
        }
        eq.schedule(*events.back(), 1 + (Tick)(i % 97));
    }
    return eq.serviceUntil(maxTick - 1);
}
/** @} */

/** @{ Scenario 2: same-tick burst drain (chain append + promote). */
template <int K, typename BaseE, typename QueueT>
class BurstEventT : public BaseE
{
  public:
    BurstEventT(QueueT &eq, Digest &digest)
        : eq_(eq), digest_(digest)
    {
    }

    void
    fire()
    {
        digest_.fold(K * 131 + 7, eq_.curTick());
    }

  protected:
    QueueT &eq_;
    Digest &digest_;
};

template <int K>
class BurstEvent
    : public BurstEventT<K, sim::Event, sim::EventQueue>
{
  public:
    BurstEvent(sim::EventQueue &eq, Digest &d)
        : BurstEventT<K, sim::Event, sim::EventQueue>(eq, d)
    {
        this->setKind(
            sim::registeredEventKind<BurstEvent>(kindLabel()));
    }

    void invoke() { this->fire(); }
    void process() override { invoke(); }

  private:
    static const char *
    kindLabel()
    {
        return __PRETTY_FUNCTION__;
    }
};

template <int K>
class RefBurstEvent : public BurstEventT<K, ref::Event, ref::Queue>
{
  public:
    using BurstEventT<K, ref::Event, ref::Queue>::BurstEventT;
    void process() override { this->fire(); }
};

template <typename QueueT, typename BaseT, template <int> class EventT>
std::uint64_t
runBurst(const ScenarioParams &p, Digest &digest)
{
    QueueT eq;
    std::vector<std::unique_ptr<BaseT>> events;
    for (int i = 0; i < p.burstWidth; ++i) {
        switch (i % numKinds) {
          case 0: events.emplace_back(new EventT<0>(eq, digest)); break;
          case 1: events.emplace_back(new EventT<1>(eq, digest)); break;
          case 2: events.emplace_back(new EventT<2>(eq, digest)); break;
          case 3: events.emplace_back(new EventT<3>(eq, digest)); break;
          case 4: events.emplace_back(new EventT<4>(eq, digest)); break;
          case 5: events.emplace_back(new EventT<5>(eq, digest)); break;
          case 6: events.emplace_back(new EventT<6>(eq, digest)); break;
          default: events.emplace_back(new EventT<7>(eq, digest)); break;
        }
    }
    std::uint64_t serviced = 0;
    for (int round = 0; round < p.burstRounds; ++round) {
        Tick t = eq.curTick() + 1;
        for (auto &ev : events)
            eq.schedule(*ev, t);
        serviced += eq.serviceUntil(t);
    }
    return serviced;
}
/** @} */

/**
 * @{ Scenario 3: transient response storm (pooled one-shots in a
 * live mixed queue). This is the production shape of dynamic
 * events: cache/DRAM/TLB continuations are allocated at event rate
 * and fire interleaved with the tick events that spawned them — not
 * as an isolated monomorphic chain. Drivers of four kinds
 * self-reschedule and, per fire, launch one pooled auto-delete
 * response a few ticks out, so the queue stays ~drivers + in-flight
 * responses deep and service alternates kinds, exactly the mix the
 * dispatch table (and, on the ref side, the vtable) sees in a real
 * run.
 */
class RefCallbackEvent : public ref::Event
{
  public:
    RefCallbackEvent(std::function<void()> fn, std::string name)
        : fn_(std::move(fn)), name_(std::move(name))
    {
        autoDelete_ = true;
    }

    static void *
    operator new(std::size_t size)
    {
        return sim::EventPool::allocate(size);
    }

    static void
    operator delete(void *p, std::size_t size) noexcept
    {
        sim::EventPool::deallocate(p, size);
    }

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
    std::string name_;
};

/** Shared driver behaviour (token folds, budget, reschedule). */
struct DriverState
{
    Digest *digest;
    Lcg lcg;
    int *budget;
};

template <int K>
class DriverEvent : public sim::Event
{
  public:
    DriverEvent(sim::EventQueue &eq, DriverState st)
        : eq_(eq), st_(st)
    {
        setKind(sim::registeredEventKind<DriverEvent>(
            __PRETTY_FUNCTION__));
    }

    void
    invoke()
    {
        st_.digest->fold(100 + K, eq_.curTick());
        if (*st_.budget <= 0)
            return;
        --*st_.budget;
        Digest *d = st_.digest;
        sim::EventQueue *q = &eq_;
        // One pooled response per fire, like a cache access
        // completing: two captured pointers keep the closure in
        // std::function's inline storage on both sides.
        eq_.scheduleOneShot(eq_.curTick() + 1 + st_.lcg.next() % 24,
                            [d, q] { d->fold(0x7e57, q->curTick()); },
                            "resp");
        eq_.schedule(*this, eq_.curTick() + 2 + st_.lcg.next() % 40);
    }

    void process() override { invoke(); }

  private:
    sim::EventQueue &eq_;
    DriverState st_;
};

template <int K>
class RefDriverEvent : public ref::Event
{
  public:
    RefDriverEvent(ref::Queue &eq, DriverState st) : eq_(eq), st_(st)
    {
    }

    void
    process() override
    {
        st_.digest->fold(100 + K, eq_.curTick());
        if (*st_.budget <= 0)
            return;
        --*st_.budget;
        Digest *d = st_.digest;
        ref::Queue *q = &eq_;
        auto *resp = new RefCallbackEvent(
            [d, q] { d->fold(0x7e57, q->curTick()); }, "resp");
        eq_.schedule(*resp,
                     eq_.curTick() + 1 + st_.lcg.next() % 24);
        eq_.schedule(*this, eq_.curTick() + 2 + st_.lcg.next() % 40);
    }

  private:
    ref::Queue &eq_;
    DriverState st_;
};

constexpr int numDrivers = 32;

template <typename QueueT, typename BaseT, template <int> class EvT>
std::uint64_t
runResponses(const ScenarioParams &p, Digest &digest)
{
    QueueT eq;
    int budget = p.callbackChain;
    std::vector<std::unique_ptr<BaseT>> drivers;
    drivers.reserve(numDrivers);
    Lcg seeder{0xd21e5ULL};
    for (int i = 0; i < numDrivers; ++i) {
        DriverState st{&digest, Lcg{seeder.next()}, &budget};
        switch (i % 4) {
          case 0: drivers.emplace_back(new EvT<0>(eq, st)); break;
          case 1: drivers.emplace_back(new EvT<1>(eq, st)); break;
          case 2: drivers.emplace_back(new EvT<2>(eq, st)); break;
          default: drivers.emplace_back(new EvT<3>(eq, st)); break;
        }
        eq.schedule(*drivers.back(), 1 + (Tick)(i % 13));
    }
    return eq.serviceUntil(maxTick - 1);
}
/** @} */

// ===============================================================
// Harness.
// ===============================================================

using clock_type = std::chrono::steady_clock;

struct Measured
{
    double ns = 0;
    std::uint64_t serviced = 0;
    std::uint64_t digest = 0;
};

template <typename Fn>
Measured
timeOnce(Fn &&fn)
{
    Digest digest;
    auto start = clock_type::now();
    std::uint64_t serviced = fn(digest);
    auto end = clock_type::now();
    Measured m;
    m.ns = (double)std::chrono::duration_cast<
        std::chrono::nanoseconds>(end - start).count();
    m.serviced = serviced;
    m.digest = digest.value;
    return m;
}

struct ScenarioResult
{
    std::string name;
    Measured ref;   ///< pre-PR virtual front end
    Measured table; ///< devirtualized EventQueue
    double speedup() const { return ref.ns / table.ns; }
    double
    refNsPerOp() const
    {
        return ref.ns / (double)ref.serviced;
    }
    double
    tableNsPerOp() const
    {
        return table.ns / (double)table.serviced;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_frontend.json";
    bool gates = true;
    bool quick = false;
    int reps = 11;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    // Sanitizer instrumentation swamps the dispatch/layout deltas
    // (and G5P_HOT_LAYOUT is off in those builds); the order digests
    // and the Top-Down legs still verify, the speed gates become
    // report-only.
    gates = false;
    std::printf("note: sanitizer build — speed gates report-only\n");
#endif
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--no-gates") {
            gates = false;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (arg == "--help") {
            std::printf("options: --json <path> | --no-gates | "
                        "--quick | --reps <n>\n");
            return 0;
        }
    }

    ScenarioParams p;
    if (quick) {
        p.stormFires = 300;
        p.burstRounds = 800;
        p.callbackChain = 40000;
        reps = std::min(reps, 5);
    }

    ScenarioResult storm{"mixed-kind tick storm", {}, {}};
    ScenarioResult burst{"same-tick burst drain", {}, {}};
    ScenarioResult calls{"transient response storm", {}, {}};
    ScenarioResult *scenarios[] = {&storm, &burst, &calls};

    auto storm_ref = [&](Digest &d) {
        return runStorm<ref::Queue, ref::Event, RefStormEvent>(p, d);
    };
    auto storm_table = [&](Digest &d) {
        return runStorm<sim::EventQueue, sim::Event, StormEvent>(p, d);
    };
    auto burst_ref = [&](Digest &d) {
        return runBurst<ref::Queue, ref::Event, RefBurstEvent>(p, d);
    };
    auto burst_table = [&](Digest &d) {
        return runBurst<sim::EventQueue, sim::Event, BurstEvent>(p, d);
    };
    auto calls_ref = [&](Digest &d) {
        return runResponses<ref::Queue, ref::Event,
                            RefDriverEvent>(p, d);
    };
    auto calls_table = [&](Digest &d) {
        return runResponses<sim::EventQueue, sim::Event,
                            DriverEvent>(p, d);
    };

    // Warm-up round primes pools, page tables and branch history for
    // both implementations alike, then interleaved min-of-reps
    // rejects scheduler noise exactly as abl_profiler does. Digests
    // are deterministic, so keeping the fastest rep's is safe.
    auto min_into = [](Measured &best, Measured got) {
        if (best.serviced == 0 || got.ns < best.ns)
            best = got;
    };
    timeOnce(storm_ref);
    timeOnce(storm_table);
    timeOnce(burst_ref);
    timeOnce(burst_table);
    timeOnce(calls_ref);
    timeOnce(calls_table);
    for (int rep = 0; rep < reps; ++rep) {
        min_into(storm.ref, timeOnce(storm_ref));
        min_into(storm.table, timeOnce(storm_table));
        min_into(burst.ref, timeOnce(burst_ref));
        min_into(burst.table, timeOnce(burst_table));
        min_into(calls.ref, timeOnce(calls_ref));
        min_into(calls.table, timeOnce(calls_table));
    }

    std::printf("# abl_frontend: pre-PR virtual front end vs "
                "dispatch-table EventQueue (min of %d reps)\n", reps);
    std::printf("%-26s %10s %12s %12s %9s %7s\n", "scenario",
                "events", "ref ns/op", "table ns/op", "speedup",
                "order");
    bool digests_ok = true;
    std::vector<double> speedups;
    for (ScenarioResult *s : scenarios) {
        bool same = s->ref.digest == s->table.digest &&
                    s->ref.serviced == s->table.serviced;
        digests_ok = digests_ok && same;
        speedups.push_back(s->speedup());
        std::printf("%-26s %10llu %12.2f %12.2f %8.3fx %7s\n",
                    s->name.c_str(),
                    (unsigned long long)s->table.serviced,
                    s->refNsPerOp(), s->tableNsPerOp(), s->speedup(),
                    same ? "match" : "DIFF");
    }
    double geomean_speedup = bench::geomean(speedups);
    std::printf("%-26s %10s %12s %12s %8.3fx\n", "geomean", "", "",
                "", geomean_speedup);
    std::printf("event pool on huge pages: %s\n",
                sim::EventPool::usingHugePages() ? "yes"
                                                 : "no (fallback)");

    // Honest secondary row: the same binary's EventQueue forced back
    // onto the virtual path isolates the dispatch choice from the
    // layout work (both sides get hot-ordered text here).
    {
        auto forced = [&](Digest &d) {
            sim::EventQueue eq;
            eq.setForceVirtualDispatch(true);
            std::vector<std::unique_ptr<sim::Event>> events;
            Lcg seeder{0x5eedULL};
            for (int i = 0; i < p.stormEvents; ++i) {
                StormState st{&d, Lcg{seeder.next()},
                              (std::uint64_t)i, p.stormFires};
                events.emplace_back(new StormEvent<0>(eq, st));
                eq.schedule(*events.back(), 1 + (Tick)(i % 97));
            }
            return eq.serviceUntil(maxTick - 1);
        };
        timeOnce(forced); // warm
        Measured virt = timeOnce(forced);
        std::printf("forced-virtual storm (same binary, layout "
                    "kept): %.2f ns/op vs table %.2f ns/op — the "
                    "dispatch-only share of the win\n",
                    virt.ns / (double)virt.serviced,
                    storm.tableNsPerOp());
    }

    // ------------------------------------------------------------
    // Modeled Top-Down: before (virtual event entries, stock text
    // layout) vs after (table entries plus the hot/cold split and
    // order file, THP-backed text), same profiled simulation. The
    // PR ships all of it together, so the legs model all of it: the
    // dispatch flag kills the megamorphic-site resteers, hotLayout
    // densifies the fetched text, and thpCode backs the packed hot
    // pages with huge pages — the icache/iTLB share of front-end
    // bound.
    // ------------------------------------------------------------
    core::RunConfig cfg;
    cfg.workload = "water_nsquared";
    cfg.cpuModel = os::CpuModel::O3;
    cfg.platform = host::xeonConfig();
    cfg.workloadScale = 0.1;
    cfg.maxGuestInsts = quick ? 4000 : 12000;

    std::fprintf(stderr, "  running modeled Top-Down legs ...\n");
    sim::setModeledDispatchVirtual(true);
    trace::FuncRegistry::instance().resetForTest();
    core::RunResult before = core::runProfiledSimulation(cfg);
    trace::FuncRegistry::instance().resetForTest();
    sim::setModeledDispatchVirtual(false);
    cfg.tuning.hotLayout = true;
    cfg.tuning.thpCode = true;
    core::RunResult after = core::runProfiledSimulation(cfg);
    sim::setModeledDispatchVirtual(true);
    trace::FuncRegistry::instance().resetForTest();

    double fe_before = before.topdown.frontendBound();
    double fe_after = after.topdown.frontendBound();
    core::printBanner(std::cout,
        "Modeled Top-Down: O3/water_nsquared, virtual vs table "
        "event entry");
    {
        core::Table table({"leg", "retiring", "bad spec", "FE bound",
                           "BE bound"});
        table.addRow({"before (virtual)",
                      fmtPercent(before.topdown.retiring),
                      fmtPercent(
                          before.topdown.badSpeculation),
                      fmtPercent(fe_before),
                      fmtPercent(before.topdown.backendBound)});
        table.addRow({"after (table+hot layout)",
                      fmtPercent(after.topdown.retiring),
                      fmtPercent(after.topdown.badSpeculation),
                      fmtPercent(fe_after),
                      fmtPercent(after.topdown.backendBound)});
        table.print(std::cout);
    }
    std::printf("front-end bound: %.2f%% -> %.2f%% "
                "(delta %+.2f pts)\n", 100 * fe_before,
                100 * fe_after, 100 * (fe_after - fe_before));

    // ------------------------------------------------------------
    // JSON artifact.
    // ------------------------------------------------------------
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"frontend\",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < 3; ++i) {
        const ScenarioResult *s = scenarios[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"ref_ns_per_op\": "
                      "%.3f, \"table_ns_per_op\": %.3f, "
                      "\"speedup\": %.4f, \"order_match\": %s}%s\n",
                      s->name.c_str(), s->refNsPerOp(),
                      s->tableNsPerOp(), s->speedup(),
                      s->ref.digest == s->table.digest ? "true"
                                                       : "false",
                      i + 1 < 3 ? "," : "");
        json << buf;
    }
    json << "  ],\n";
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "  \"geomean_speedup_gate\": %.4f,\n"
                  "  \"order_digests_match\": %s,\n"
                  "  \"event_pool_huge_pages\": %s,\n"
                  "  \"topdown_frontend_bound_before\": %.5f,\n"
                  "  \"topdown_frontend_bound_after\": %.5f\n}\n",
                  geomean_speedup, digests_ok ? "true" : "false",
                  sim::EventPool::usingHugePages() ? "true" : "false",
                  fe_before, fe_after);
    json << buf;
    if (!json) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());

    // The acceptance gates.
    int failures = 0;
    if (!digests_ok) {
        std::printf("FAIL: service-order digests diverge between "
                    "reference and table queues\n");
        ++failures;
    }
    if (gates) {
        if (geomean_speedup < 1.10) {
            std::printf("FAIL: geomean dispatch+layout speedup "
                        "%.3fx < 1.10x\n", geomean_speedup);
            ++failures;
        }
        if (fe_after >= fe_before) {
            std::printf("FAIL: modeled front-end bound did not drop "
                        "(%.4f -> %.4f)\n", fe_before, fe_after);
            ++failures;
        }
    }
    return failures ? 1 : 0;
}
