/**
 * @file
 * Shared plumbing for the figure-regeneration binaries: one profiled
 * run per (workload, model, mode, platform, tuning) point, small CLI
 * (--quick / --full / --scale / --csv), and formatting helpers.
 *
 * Every bench prints the same rows/series as its paper figure; see
 * DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
 * paper-vs-measured numbers.
 */

#ifndef G5P_BENCH_COMMON_HH
#define G5P_BENCH_COMMON_HH

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "base/str.hh"
#include "core/experiment.hh"
#include "core/parallel.hh"
#include "core/report.hh"
#include "core/topdown.hh"
#include "tuning/dvfs.hh"
#include "tuning/hugepages.hh"
#include "tuning/optflag.hh"

namespace g5p::bench
{

/** CLI options common to all figure binaries. */
struct BenchOptions
{
    double scale = 0.25;  ///< workload input scale
    bool quick = false;   ///< trim sweeps for CI-speed runs
    bool full = false;    ///< widen sweeps for paper-fidelity runs
    bool csv = false;     ///< machine-readable output

    /**
     * Per-run guest-instruction budget (0 = run to completion).
     * Guest workloads differ widely in dynamic length; capping keeps
     * the whole suite minutes-scale while every comparison still
     * measures the same guest work on both sides.
     */
    std::uint64_t maxGuestInsts = 16000;

    /**
     * Worker threads for sweep prefetches (RunCache::prefetch).
     * 1 = serial; 0 = one per hardware thread. Results are
     * byte-identical either way (see core/parallel.hh), so --jobs is
     * purely a wall-clock knob.
     */
    unsigned jobs = 1;

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions opts;
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--quick") {
                opts.quick = true;
                opts.scale = 0.1;
                opts.maxGuestInsts = 4000;
            } else if (arg == "--full") {
                opts.full = true;
                opts.scale = 0.6;
                opts.maxGuestInsts = 0;
            } else if (arg == "--csv") {
                opts.csv = true;
            } else if (arg == "--scale" && i + 1 < argc) {
                opts.scale = std::atof(argv[++i]);
            } else if (arg == "--jobs" && i + 1 < argc) {
                opts.jobs = (unsigned)std::atoi(argv[++i]);
            } else if (arg == "--help") {
                std::cout <<
                    "options: --quick | --full | --csv | "
                    "--scale <f> | --jobs <n>\n";
                std::exit(0);
            }
        }
        return opts;
    }
};

/** Cache of profiled runs so figures sharing points don't re-run. */
class RunCache
{
  public:
    explicit RunCache(const BenchOptions &opts) : opts_(opts) {}

    const core::RunResult &
    get(core::RunConfig cfg)
    {
        normalize(cfg);
        std::string key = keyOf(cfg);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        std::cerr << "  running " << key << " ...\n";
        auto [pos, _] =
            cache_.emplace(key, core::runProfiledSimulation(cfg));
        return pos->second;
    }

    /**
     * Fill the cache for a whole sweep on the worker pool (--jobs N)
     * before the figure's loops read it back with get(). Duplicate
     * and already-cached points are skipped; with jobs <= 1 this is
     * exactly the serial runs get() would have done, in the same
     * order, so figures are byte-identical regardless of --jobs.
     */
    void
    prefetch(std::vector<core::RunConfig> configs)
    {
        std::vector<core::RunConfig> pending;
        std::vector<std::string> keys;
        for (core::RunConfig &cfg : configs) {
            normalize(cfg);
            std::string key = keyOf(cfg);
            if (cache_.count(key) ||
                std::find(keys.begin(), keys.end(), key) !=
                    keys.end())
                continue;
            pending.push_back(cfg);
            keys.push_back(std::move(key));
        }
        if (pending.empty())
            return;
        std::cerr << "  prefetching " << pending.size()
                  << " runs on " << (opts_.jobs ? opts_.jobs :
                      core::ParallelExecutor::hardwareJobs())
                  << " worker(s) ...\n";
        std::vector<core::RunResult> results =
            core::runExperiments(pending, opts_.jobs);
        for (std::size_t i = 0; i < results.size(); ++i)
            cache_.emplace(keys[i], std::move(results[i]));
    }

  private:
    void
    normalize(core::RunConfig &cfg) const
    {
        cfg.workloadScale = opts_.scale;
        cfg.maxGuestInsts = opts_.maxGuestInsts;
    }

    std::string
    keyOf(const core::RunConfig &cfg) const
    {
        return cfg.workload + "|" +
            os::cpuModelName(cfg.cpuModel) + "|" +
            os::simModeName(cfg.mode) + "|" + cfg.platform.name +
            "|" + std::to_string(cfg.corun.processes) +
            (cfg.corun.smt ? "s" : "") +
            "|thp" + std::to_string(cfg.tuning.thpCode) +
            "|ehp" + std::to_string(cfg.tuning.ehpCode) +
            "|o3" + std::to_string(cfg.tuning.optO3) +
            "|f" + fmtDouble(cfg.tuning.freqGHzOverride, 2) +
            "|t" + std::to_string(cfg.tuning.turbo) +
            "|seed" + std::to_string(cfg.seed);
    }

    BenchOptions opts_;
    std::map<std::string, core::RunResult> cache_;
};

/** Geometric mean (Fig. 1 aggregates per-workload ratios this way). */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / (double)values.size());
}

/** Workload subset by run budget. */
inline std::vector<std::string>
benchWorkloads(const BenchOptions &opts)
{
    if (opts.quick)
        return {"water_nsquared", "canneal", "blackscholes"};
    return workloads::Registry::parsecSplashNames();
}

inline const char *
onOff(bool v)
{
    return v ? "on" : "off";
}

/** One labeled profile row of Figs. 2-6. */
struct ProfileRow
{
    std::string label;
    const core::RunResult *run;
};

/**
 * The gem5 configuration rows the paper's Top-Down figures use:
 * every CPU type on BOOT_EXIT (FS) and on a PARSEC workload (SE),
 * profiled on the Intel_Xeon platform.
 */
inline std::vector<ProfileRow>
gem5ProfileRows(RunCache &cache, const BenchOptions &opts)
{
    std::vector<ProfileRow> rows;
    for (os::CpuModel model : os::allCpuModels) {
        std::string mname = os::cpuModelName(model);
        for (auto &c : mname)
            c = (char)std::toupper(c);

        if (!opts.quick) {
            core::RunConfig boot;
            boot.workload = "boot-exit";
            boot.cpuModel = model;
            boot.mode = os::SimMode::FS;
            boot.platform = host::xeonConfig();
            rows.push_back(
                {mname + "_BOOT_EXIT", &cache.get(boot)});
        }

        core::RunConfig parsec;
        parsec.workload = "water_nsquared";
        parsec.cpuModel = model;
        parsec.mode = os::SimMode::SE;
        parsec.platform = host::xeonConfig();
        rows.push_back({mname + "_PARSEC", &cache.get(parsec)});
    }
    return rows;
}

/** The three SPEC reference rows (bare metal on Intel_Xeon). */
inline std::vector<std::pair<std::string, core::RunResult>>
specProfileRows()
{
    std::vector<std::pair<std::string, core::RunResult>> rows;
    for (const auto &stream : workloads::specReferenceStreams()) {
        rows.emplace_back(stream.name,
                          core::runSpecReference(
                              stream, host::xeonConfig()));
    }
    return rows;
}

} // namespace g5p::bench

#endif // G5P_BENCH_COMMON_HH
