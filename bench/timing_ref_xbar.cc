/**
 * @file
 * Verbatim pre-optimization copy of the detailed memory path, kept as
 * the timed + byte-identity reference for bench/abl_timing. Do not
 * "fix" or modernize this code: its whole value is being the faithful
 * baseline the optimized path is compared against. Source: the tree
 * as of the commit preceding the timing memory-path optimization
 * round.
 */
#include "timing_ref_xbar.hh"

#include <algorithm>

#include "trace/recorder.hh"

namespace g5p::bench::refpath
{

// The parameter structs and the coherence-state enum are shared with
// the optimized path (mem/cache.hh, mem/xbar.hh); only the machinery
// below differs. Everything else (Packet, ports, ClockedObject) is
// the production code, so both legs of the comparison exercise the
// same surrounding simulator.
using namespace g5p::mem;

CoherentXbar::CoherentXbar(sim::Simulator &sim, const std::string &name,
                           const sim::ClockDomain &domain,
                           const XbarParams &params)
    : sim::ClockedObject(sim, name, domain, nullptr, 4096),
      params_(params),
      memPort_(*this, name + ".mem_side")
{
}

CoherentXbar::~CoherentXbar() = default;

ResponsePort &
CoherentXbar::addUpstreamPort(Cache *snooper)
{
    unsigned index = (unsigned)upstreamPorts_.size();
    g5p_assert(index < 32, "xbar supports at most 32 upstream ports");
    upstreamPorts_.push_back(std::make_unique<UpstreamPort>(
        *this, index, name() + ".cpu_side" + std::to_string(index)));
    snoopers_.push_back(snooper);
    return *upstreamPorts_.back();
}

unsigned
CoherentXbar::processSnoops(Packet &pkt, unsigned from)
{
    G5P_TRACE_SCOPE("CoherentXbar::processSnoops", MemAccess, false);
    Addr line = pkt.lineAddr();
    std::uint32_t &holders = snoopFilter_[line];
    touchState(line % stateBytes(), 8, true);

    unsigned invalidated = 0;
    if (pkt.isWriteback()) {
        holders &= ~(1u << from);
        if (!holders)
            snoopFilter_.erase(line);
        return 0;
    }

    std::uint32_t others = holders & ~(1u << from);
    if (pkt.needsExclusive() && others) {
        for (unsigned i = 0; i < snoopers_.size(); ++i) {
            if ((others & (1u << i)) && snoopers_[i]) {
                snoopers_[i]->invalidateLine(pkt.addr());
                ++invalidated;
            }
        }
        holders &= (1u << from);
        snoopInvalidations_ += invalidated;
    }

    // Grant write permission when no sibling retains a copy.
    others = holders & ~(1u << from);
    pkt.setWritable(pkt.needsExclusive() || others == 0);
    holders |= (1u << from);

    if ((double)snoopFilter_.size() > filterEntriesPeak_.value())
        filterEntriesPeak_ = (double)snoopFilter_.size();
    return invalidated;
}

std::uint32_t
CoherentXbar::holdersOf(Addr addr) const
{
    auto it = snoopFilter_.find(addr & ~(Addr)(lineBytes - 1));
    return it != snoopFilter_.end() ? it->second : 0;
}

unsigned
CoherentXbar::sharedLineCount() const
{
    unsigned shared = 0;
    for (const auto &[addr, mask] : snoopFilter_)
        if ((mask & (mask - 1)) != 0)
            ++shared;
    return shared;
}

Tick
CoherentXbar::recvAtomic(Packet &pkt, unsigned from)
{
    G5P_TRACE_SCOPE("CoherentXbar::recvAtomic", MemAtomic, true);
    transactions_ += 1;
    unsigned snoops = processSnoops(pkt, from);
    if (pkt.isUpgrade()) {
        // Ownership-only: the snoop pass above already invalidated
        // every sibling copy; nothing travels downstream.
        return cyclesToTicks(params_.frontendLatency +
                             snoops * params_.snoopLatency +
                             params_.responseLatency);
    }
    bool writable = pkt.writable();
    Tick lat = cyclesToTicks(params_.frontendLatency +
                             snoops * params_.snoopLatency);
    Tick down = memPort_.sendAtomic(pkt);
    // The snoop decision, not the downstream path, owns writability.
    pkt.setWritable(writable);
    return lat + down + cyclesToTicks(params_.responseLatency);
}

void
CoherentXbar::recvFunctional(Packet &pkt)
{
    memPort_.sendFunctional(pkt);
}

void
CoherentXbar::recvTimingReq(PacketPtr pkt, unsigned from)
{
    G5P_TRACE_SCOPE("CoherentXbar::recvTimingReq", MemAccess, true);
    transactions_ += 1;
    unsigned snoops = processSnoops(*pkt, from);

    if (pkt->isUpgrade()) {
        // Ownership-only: siblings are already invalidated; turn the
        // packet around here instead of sending it downstream.
        Cycles delay = params_.frontendLatency +
                       snoops * params_.snoopLatency +
                       params_.responseLatency;
        scheduleFn(delay, [this, pkt, from] {
            pkt->makeResponse();
            upstreamPorts_[from]->sendTimingResp(pkt);
        });
        return;
    }

    if (!pkt->needsResponse()) {
        // Writebacks just flow through after the crossbar latency.
        scheduleFn(params_.frontendLatency,
                   [this, pkt] { memPort_.sendTimingReq(pkt); });
        return;
    }

    // Remember the return path and the granted permission in the
    // packet itself; both survive the downstream round trip.
    pkt->setSenderState(
        reinterpret_cast<void *>((std::uintptr_t)(from + 1)));
    bool writable = pkt->writable();
    Cycles delay = params_.frontendLatency +
                   snoops * params_.snoopLatency;
    scheduleFn(delay, [this, pkt, writable] {
        pkt->setWritable(writable);
        memPort_.sendTimingReq(pkt);
    });
}

void
CoherentXbar::recvTimingResp(PacketPtr pkt)
{
    G5P_TRACE_SCOPE("CoherentXbar::recvTimingResp", MemAccess, true);
    auto tagged = (std::uintptr_t)pkt->senderState();
    g5p_assert(tagged >= 1 && tagged <= upstreamPorts_.size(),
               "xbar response with unknown return path");
    unsigned from = (unsigned)(tagged - 1);
    pkt->setSenderState(nullptr);
    scheduleFn(params_.responseLatency, [this, pkt, from] {
        upstreamPorts_[from]->sendTimingResp(pkt);
    });
}

void
CoherentXbar::scheduleFn(Cycles cycles, std::function<void()> fn)
{
    scheduleOneShot(clockEdge(cycles ? cycles : 1), std::move(fn),
                     name() + ".delayed");
}

void
CoherentXbar::serialize(sim::CheckpointOut &cp) const
{
    std::vector<std::uint64_t> addrs, masks;
    addrs.reserve(snoopFilter_.size());
    for (const auto &[addr, mask] : snoopFilter_)
        addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    for (std::uint64_t addr : addrs)
        masks.push_back(snoopFilter_.at(addr));
    cp.paramVector("filterAddr", addrs);
    cp.paramVector("filterMask", masks);
}

void
CoherentXbar::unserialize(const sim::CheckpointIn &cp)
{
    std::vector<std::uint64_t> addrs, masks;
    cp.paramVector("filterAddr", addrs);
    cp.paramVector("filterMask", masks);
    g5p_assert(addrs.size() == masks.size(),
               "%s: corrupt snoop-filter checkpoint", name().c_str());
    snoopFilter_.clear();
    for (std::size_t i = 0; i < addrs.size(); ++i)
        snoopFilter_[addrs[i]] = (std::uint32_t)masks[i];
}

void
CoherentXbar::regStats()
{
    addStat(&transactions_, "transactions", "requests forwarded");
    addStat(&snoopInvalidations_, "snoopInvalidations",
            "sibling L1 lines invalidated");
    addStat(&filterEntriesPeak_, "filterEntriesPeak",
            "peak snoop-filter occupancy (lines)");
}

} // namespace g5p::bench::refpath
