/**
 * @file
 * Ablation: the parallel experiment harness and batched trace->host
 * delivery.
 *
 * Part 1 — worker-pool scaling: one fixed sweep of profiled runs,
 * executed serially and on 2- and 4-thread pools. Reports wall-clock
 * speedup and verifies every pooled result is byte-identical to its
 * serial reference (doubles compared as bit patterns) — the paper
 * co-runs one gem5 process per hardware thread (§II, 4.15x aggregate
 * throughput at 40 processes), and this harness reproduces that
 * methodology in-process.
 *
 * Part 2 — batched sink delivery: record one run's synthesized op
 * stream, then hand the same stream to fresh HostCores through the
 * two delivery contracts — one virtual op() call per instruction
 * (the pre-batching path, what HostInstSink shims still do) versus
 * one ops() call per 4096-instruction span. This measures the sink
 * boundary itself; both deliveries must produce bit-identical
 * counters. End-to-end wall clock for full runs under each contract
 * is also reported (there the guest simulator and synthesizer,
 * identical in both, dilute the delivery difference).
 *
 * Writes BENCH_parallel.json. Gates: batched delivery >= 1.15x the
 * per-op sink throughput, and (only when the host has >= 4 hardware
 * threads — scaling cannot exist on fewer) >= 3x at 4 threads.
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel.hh"
#include "host/host_core.hh"
#include "os/system.hh"
#include "sim/simulator.hh"
#include "trace/code_layout.hh"
#include "trace/recorder.hh"
#include "trace/synthesizer.hh"

using namespace g5p;
using namespace g5p::core;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return (double)std::chrono::duration_cast<
               std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
               .count() /
           1e9;
}

/** Every result field that matters, doubles as raw bit patterns. */
std::string
signatureOf(const RunResult &r)
{
    std::ostringstream os;
    auto bits = [&os](double v) {
        os << std::bit_cast<std::uint64_t>(v) << ',';
    };
    os << r.workload << '|' << r.platform << '|' << r.hostInsts
       << ',' << r.guestInsts << ',' << r.codeBytes << ','
       << r.simTicks << ',' << r.guestResult << ','
       << r.distinctFunctions << ',' << r.counters.insts << ','
       << r.counters.uops << ',' << r.counters.icacheMisses << ','
       << r.counters.dcacheMisses << ',' << r.counters.mispredicts
       << ',' << r.counters.llcMisses << '|';
    bits(r.hostSeconds);
    bits(r.ipc);
    bits(r.counters.baseCycles);
    bits(r.counters.beMemCycles);
    bits(r.topdown.retiring);
    bits(r.topdown.backendBound);
    bits(r.topdown.frontendLatency);
    return os.str();
}

/** Captures a run's op stream (bounded) for replay. */
struct RecordingSink : trace::HostInstSink
{
    explicit RecordingSink(std::size_t cap) { stream.reserve(cap); }

    void
    op(const trace::HostOp &op) override
    {
        if (stream.size() < stream.capacity())
            stream.push_back(op);
    }

    std::vector<trace::HostOp> stream;
};

/** Counter signature of a replayed stream, doubles as bit patterns. */
std::string
coreSignature(const host::HostCore &core)
{
    host::HostCounters c = core.counters();
    host::TopdownBreakdown td = core.topdown();
    std::ostringstream os;
    auto bits = [&os](double v) {
        os << std::bit_cast<std::uint64_t>(v) << ',';
    };
    os << c.insts << ',' << c.uops << ',' << c.loads << ','
       << c.stores << ',' << c.branches << ',' << c.icacheMisses
       << ',' << c.dcacheMisses << ',' << c.itlbMisses << ','
       << c.dtlbMisses << ',' << c.mispredicts << ','
       << c.unknownBranches << ',' << c.l2Misses << ','
       << c.llcMisses << ',' << c.dramBytes << '|';
    bits(c.baseCycles);
    bits(c.beMemCycles);
    bits(c.beCoreCycles);
    bits(c.badSpecCycles);
    bits(td.retiring);
    bits(td.frontendLatency);
    bits(td.frontendBandwidth);
    bits(td.backendBound);
    return os.str();
}

/**
 * Deliver the stream one op at a time through the virtual sink
 * interface — the pre-batching contract. noinline so the compiler
 * cannot devirtualize against the concrete core the caller built,
 * which would not be possible at the real call site either (the
 * synthesizer only ever sees a HostInstSink&).
 */
__attribute__((noinline)) void
replayPerOp(trace::HostInstSink &sink,
            const std::vector<trace::HostOp> &stream)
{
    for (const trace::HostOp &op : stream)
        sink.op(op);
}

/** Deliver the stream in 4096-op spans through ops(). */
__attribute__((noinline)) void
replayBatched(trace::HostInstSink &sink,
              const std::vector<trace::HostOp> &stream)
{
    constexpr std::size_t span = trace::Synthesizer::defaultBatchOps;
    for (std::size_t i = 0; i < stream.size(); i += span)
        sink.ops(stream.data() + i,
                 std::min(span, stream.size() - i));
}

/**
 * Synthesize one run's op stream into a recording sink: the same
 * guest simulation runProfiledSimulation drives, minus the host
 * model, so the replays below exercise delivery alone.
 */
std::vector<trace::HostOp>
recordStream(const RunConfig &config, std::size_t cap)
{
    sim::Simulator simulator("system");
    auto workload = workloads::Registry::instance().create(
        config.workload, config.workloadScale);
    os::SystemConfig sys_cfg;
    sys_cfg.cpuModel = config.cpuModel;
    sys_cfg.maxInstsPerCpu = config.maxGuestInsts;
    os::System system(simulator, sys_cfg, *workload);

    trace::LayoutOptions layout_opts;
    layout_opts.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
    trace::CodeLayout layout(trace::FuncRegistry::instance(),
                             layout_opts);
    RecordingSink sink(cap);
    trace::Synthesizer synth(layout, sink, config.seed);
    trace::Recorder recorder;
    recorder.addConsumer(&synth);
    recorder.activate();
    system.run();
    recorder.deactivate();
    synth.flush();
    return std::move(sink.stream);
}

/** The scaling sweep: all four models x two workloads. */
std::vector<RunConfig>
sweepConfigs(double scale)
{
    std::vector<RunConfig> configs;
    for (os::CpuModel model : os::allCpuModels) {
        for (const char *wl : {"water_nsquared", "blackscholes"}) {
            RunConfig cfg;
            cfg.workload = wl;
            cfg.workloadScale = scale;
            cfg.maxGuestInsts = 16000;
            cfg.cpuModel = model;
            cfg.platform = host::xeonConfig();
            configs.push_back(cfg);
        }
    }
    return configs;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = 0.25;
    std::string json_path = "BENCH_parallel.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc)
            scale = std::atof(argv[++i]);
        else if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg == "--help") {
            std::printf("options: --scale <f> | --json <path>\n");
            return 0;
        }
    }

    const unsigned hw = ParallelExecutor::hardwareJobs();
    std::printf("# abl_parallel: worker-pool sweeps and batched "
                "trace->host delivery (%u hw thread%s)\n",
                hw, hw == 1 ? "" : "s");

    // ----------------------------------------------------------
    // Part 1: pool scaling, byte-identical to serial.
    // ----------------------------------------------------------
    std::vector<RunConfig> configs = sweepConfigs(scale);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<RunResult> serial = runExperiments(configs, 1);
    double serial_s = secondsSince(t0);

    std::vector<std::string> reference;
    for (const RunResult &r : serial)
        reference.push_back(signatureOf(r));

    bool identical = true;
    std::printf("\n%-28s %10s %10s %10s\n", "pool",
                "wall s", "speedup", "identical");
    std::printf("%-28s %10.3f %10s %10s\n", "serial (reference)",
                serial_s, "1.00x", "-");

    struct Point
    {
        unsigned jobs;
        double seconds;
        bool identical;
    };
    std::vector<Point> points;
    for (unsigned jobs : {2u, 4u}) {
        t0 = std::chrono::steady_clock::now();
        std::vector<RunResult> pooled = runExperiments(configs, jobs);
        double pooled_s = secondsSince(t0);
        bool same = pooled.size() == reference.size();
        for (std::size_t i = 0; same && i < pooled.size(); ++i)
            same = signatureOf(pooled[i]) == reference[i];
        identical = identical && same;
        points.push_back(Point{jobs, pooled_s, same});
        std::printf("%-28s %10.3f %9.2fx %10s\n",
                    (std::to_string(jobs) + " threads").c_str(),
                    pooled_s, serial_s / pooled_s,
                    same ? "yes" : "NO");
    }

    // ----------------------------------------------------------
    // Part 2: batched vs per-op sink delivery. Record one run's op
    // stream, then replay the identical stream into fresh HostCores
    // through each delivery contract, best-of-5.
    // ----------------------------------------------------------
    RunConfig single;
    single.workload = "water_nsquared";
    single.workloadScale = scale;
    single.cpuModel = os::CpuModel::O3;
    single.platform = host::xeonConfig();

    constexpr std::size_t streamCap = 2'000'000;
    std::vector<trace::HostOp> stream = recordStream(single,
                                                     streamCap);

    // Interleave the two contracts round by round so transient host
    // load hits both paths alike; best-of-7 each.
    auto timed_replay = [&](bool batched, std::string &sig) {
        host::PageSizePolicy policy(single.platform.pageBits);
        host::HostCore core(single.platform, policy);
        auto start = std::chrono::steady_clock::now();
        if (batched)
            replayBatched(core, stream);
        else
            replayPerOp(core, stream);
        double s = secondsSince(start);
        sig = coreSignature(core);
        return s;
    };
    std::string batched_sig, per_op_sig;
    double per_op_s = 1e30, batched_s = 1e30;
    for (int r = 0; r < 7; ++r) {
        per_op_s = std::min(per_op_s,
                            timed_replay(false, per_op_sig));
        batched_s = std::min(batched_s,
                             timed_replay(true, batched_sig));
    }
    bool batch_identical = batched_sig == per_op_sig;
    double batch_speedup = per_op_s / batched_s;
    double ops_m = (double)stream.size() / 1e6;

    std::printf("\n%-28s %10s %10s %10s\n",
                "sink delivery", "wall s", "Mops/s", "speedup");
    std::printf("%-28s %10.3f %10.1f %10s\n",
                "per-op virtual (ablation)", per_op_s,
                ops_m / per_op_s, "1.00x");
    std::printf("%-28s %10.3f %10.1f %9.2fx  identical: %s\n",
                "batched (4096-op spans)", batched_s,
                ops_m / batched_s, batch_speedup,
                batch_identical ? "yes" : "NO");

    // End-to-end context: the same contract difference inside full
    // runs, where the (identical) guest simulator and synthesizer
    // dominate. Reported, not gated.
    auto best_run = [](RunConfig cfg, int reps) {
        double best = 1e30;
        for (int r = 0; r < reps; ++r) {
            auto start = std::chrono::steady_clock::now();
            runProfiledSimulation(cfg);
            best = std::min(best, secondsSince(start));
        }
        return best;
    };
    double run_batched_s = best_run(single, 3);
    RunConfig per_op_cfg = single;
    per_op_cfg.sinkBatchOps = 1;
    double run_per_op_s = best_run(per_op_cfg, 3);
    std::printf("%-28s %10.3f %10s %9.2fx  (reported only)\n",
                "full run, per-op vs batch", run_batched_s, "-",
                run_per_op_s / run_batched_s);

    // ----------------------------------------------------------
    // Gates first (so the JSON can record their status), then JSON.
    // Every gate is recorded whether it applies or not: a gate that
    // cannot run on this host (the 3x/4-thread scaling gate needs
    // hardware to scale onto) is an explicit skip in the JSON and
    // the output, never a silent pass.
    // ----------------------------------------------------------
    struct Gate
    {
        const char *name;
        bool applies;
        bool passed;         // meaningful only when applies
        std::string detail;
    };
    std::vector<Gate> gates;

    char detail[160];
    gates.push_back({"pooled_and_batched_identical", true,
                     identical && batch_identical,
                     "pooled sweeps and batched delivery byte-equal "
                     "to the serial reference"});
    std::snprintf(detail, sizeof detail,
                  "batched delivery %.2fx over per-op (gate 1.15x)",
                  batch_speedup);
    gates.push_back({"batched_speedup_1.15x", true,
                     batch_speedup >= 1.15, detail});
    {
        bool applies = hw >= 4;
        double x4 = serial_s / points.back().seconds;
        if (applies)
            std::snprintf(detail, sizeof detail,
                          "4-thread speedup %.2fx (gate 3.0x)", x4);
        else
            std::snprintf(detail, sizeof detail,
                          "needs >= 4 hardware threads, host has %u "
                          "(speedup %.2fx reported only)", hw, x4);
        gates.push_back({"scaling_3x_at_4_threads", applies,
                         applies && x4 >= 3.0, detail});
    }

    bool ok = true;
    std::printf("\ngates:\n");
    for (const Gate &g : gates) {
        const char *status = !g.applies ? "SKIP"
                             : g.passed ? "pass"
                                        : "FAIL";
        std::printf("  %-32s %s  (%s)\n", g.name, status,
                    g.detail.c_str());
        if (g.applies && !g.passed)
            ok = false;
    }

    std::ofstream json(json_path);
    json << "{\n  \"hardware_threads\": " << hw << ",\n"
         << "  \"sweep_runs\": " << configs.size() << ",\n"
         << "  \"serial_seconds\": " << serial_s << ",\n"
         << "  \"scaling\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "    {\"jobs\": %u, \"seconds\": %.6f, "
                      "\"speedup\": %.3f, \"identical\": %s}%s\n",
                      points[i].jobs, points[i].seconds,
                      serial_s / points[i].seconds,
                      points[i].identical ? "true" : "false",
                      i + 1 < points.size() ? "," : "");
        json << buf;
    }
    json << "  ],\n"
         << "  \"delivery_ops\": " << stream.size() << ",\n"
         << "  \"batched_seconds\": " << batched_s << ",\n"
         << "  \"per_op_seconds\": " << per_op_s << ",\n"
         << "  \"batched_mops\": " << ops_m / batched_s << ",\n"
         << "  \"per_op_mops\": " << ops_m / per_op_s << ",\n"
         << "  \"batched_speedup\": " << batch_speedup << ",\n"
         << "  \"batched_identical\": "
         << (batch_identical ? "true" : "false") << ",\n"
         << "  \"full_run_batched_seconds\": " << run_batched_s
         << ",\n"
         << "  \"full_run_per_op_seconds\": " << run_per_op_s
         << ",\n"
         << "  \"gates\": [\n";
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        // Per-scenario style (BENCH_eventq.json): one object per
        // gate; a skipped gate says so instead of faking a pass.
        json << "    {\"name\": \"" << g.name << "\", \"applies\": "
             << (g.applies ? "true" : "false") << ", ";
        if (g.applies)
            json << "\"passed\": " << (g.passed ? "true" : "false");
        else
            json << "\"passed\": null, \"skipped_reason\": \""
                 << g.detail << "\"";
        json << ", \"detail\": \"" << g.detail << "\"}"
             << (i + 1 < gates.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    if (!json) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
    return ok ? 0 : 1;
}
