/**
 * @file
 * Fig. 10: performance gain from backing gem5's code with huge pages
 * (THP via iodlr-style remap, EHP via libhugetlbfs-style relink) per
 * CPU type on Intel_Xeon. The paper: up to 5.9% speedup, larger for
 * detailed CPU models.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 10: speedup from huge-page code backing on "
        "Intel_Xeon (water_nsquared)");

    core::Table table({"CPU type", "THP speedup", "EHP speedup"});
    for (os::CpuModel model : os::allCpuModels) {
        core::RunConfig cfg;
        cfg.workload = "water_nsquared";
        cfg.cpuModel = model;
        cfg.platform = host::xeonConfig();
        const auto &base = cache.get(cfg);

        tuning::applyHugePages(cfg.tuning,
                               tuning::HugePageMode::Thp);
        double thp = tuning::speedupOver(base, cache.get(cfg));
        tuning::applyHugePages(cfg.tuning,
                               tuning::HugePageMode::Ehp);
        double ehp = tuning::speedupOver(base, cache.get(cfg));

        table.addRow({os::cpuModelName(model),
                      fmtPercent(thp - 1.0),
                      fmtPercent(ehp - 1.0)});
    }

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    os << "\nPaper reference: up to 5.9% improvement; simple CPUs "
          "gain less than detailed ones;\nno consistent winner "
          "between THP and EHP.\n";
    return 0;
}
