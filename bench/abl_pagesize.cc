/**
 * @file
 * Ablation: virtual-memory page size vs gem5 simulation speed. The
 * paper credits a large part of the M1 win to its 16KB pages; this
 * sweep isolates that variable on an otherwise-Xeon machine, plus
 * huge-page code backing at each size.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Ablation: base page size vs gem5 sim time (O3, "
        "Xeon-like host)");

    core::RunConfig base;
    base.workload = "water_nsquared";
    base.cpuModel = os::CpuModel::O3;
    base.platform = host::xeonConfig();
    double base_sec = cache.get(base).hostSeconds;

    core::Table table({"Page size", "THP", "iTLB miss/kI",
                       "iTLB slots", "norm. time"});
    for (unsigned bits : {12u, 14u, 16u}) {
        for (bool thp : {false, true}) {
            core::RunConfig cfg = base;
            cfg.platform.pageBits = bits;
            cfg.tuning.thpCode = thp;
            const auto &run = cache.get(cfg);
            table.addRow({fmtBytes(1ull << bits), onOff(thp),
                          fmtDouble(1000.0 *
                                        run.counters.itlbMisses /
                                        run.counters.insts, 2),
                          fmtPercent(run.topdown.feItlb, 2),
                          fmtDouble(run.hostSeconds / base_sec,
                                    3)});
        }
    }
    table.print(os);

    os << "\nLarger base pages buy iTLB reach exactly as the M1 "
          "comparison (Fig. 8) suggests;\nTHP recovers most of it "
          "on 4KB systems.\n";
    return 0;
}
