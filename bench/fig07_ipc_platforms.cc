/**
 * @file
 * Fig. 7: IPC and stall share of gem5 (water_nsquared, as the paper)
 * with Atomic/Timing/O3 CPUs across the three evaluation platforms.
 * The paper: M1 IPC is ~2.2x the Xeon's.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 7: gem5 IPC and stall time across platforms "
        "(water_nsquared)");

    core::Table table({"Platform", "CPU type", "IPC",
                       "IPC / width", "Stalled slots", "vs Xeon"});
    std::map<std::string, double> xeon_ipc;
    for (const auto &platform : host::tableIIPlatforms()) {
        for (os::CpuModel model :
             {os::CpuModel::Atomic, os::CpuModel::Timing,
              os::CpuModel::O3}) {
            core::RunConfig cfg;
            cfg.workload = "water_nsquared";
            cfg.cpuModel = model;
            cfg.platform = platform;
            const auto &run = cache.get(cfg);
            double stalled = 1.0 - run.topdown.retiring;
            std::string key = os::cpuModelName(model);
            if (platform.name == "Intel_Xeon")
                xeon_ipc[key] = run.ipc;
            table.addRow({platform.name, key, fmtDouble(run.ipc, 2),
                          fmtPercent(run.ipc /
                                     platform.dispatchWidth),
                          fmtPercent(stalled),
                          fmtDouble(run.ipc / xeon_ipc[key], 2) +
                              "x"});
        }
    }

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    os << "\nPaper reference: M1_Pro and M1_Ultra IPC are 2.22x and "
          "2.24x Intel_Xeon's.\n";
    return 0;
}
