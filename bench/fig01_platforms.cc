/**
 * @file
 * Fig. 1 (+ Table II): simulation time of each evaluation platform,
 * normalized to Intel_Xeon, per co-run scenario and simulation mode,
 * geomean over the PARSEC/SPLASH-2x workloads. Also reports the §II
 * SMT-off-vs-on comparison.
 */

#include "bench_common.hh"

#include "host/corun.hh"

using namespace g5p;
using namespace g5p::bench;

namespace
{

void
printTableII(std::ostream &os)
{
    core::printBanner(os, "Table II: evaluation platforms");
    core::Table table({"Platform", "Cores", "Freq", "L1I", "L1D",
                       "Line", "Page", "L2", "LLC", "Width"});
    for (const auto &cfg : host::tableIIPlatforms()) {
        table.addRow({cfg.name,
                      std::to_string(cfg.physicalCores) + "C/" +
                          std::to_string(cfg.hwThreads) + "T",
                      fmtDouble(cfg.freqGHz, 1) + "GHz",
                      fmtBytes(cfg.icache.sizeBytes),
                      fmtBytes(cfg.dcache.sizeBytes),
                      fmtBytes(cfg.lineBytes),
                      fmtBytes(1ull << cfg.pageBits),
                      fmtBytes(cfg.l2.sizeBytes),
                      fmtBytes(cfg.llc.sizeBytes),
                      std::to_string(cfg.dispatchWidth) + "-wide"});
    }
    table.print(os);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    printTableII(os);

    auto platforms = host::tableIIPlatforms();
    std::vector<os::CpuModel> models{os::CpuModel::Atomic,
                                     os::CpuModel::O3};
    std::vector<os::SimMode> modes{os::SimMode::SE};
    if (opts.full)
        modes.push_back(os::SimMode::FS);

    struct Scenario
    {
        const char *label;
        bool per_core;
        bool per_thread;
    };
    std::vector<Scenario> scenarios{
        {"1 gem5 process", false, false},
        {"procs = # physical cores", true, false},
        {"procs = # hw threads (SMT)", false, true},
    };
    if (opts.quick)
        scenarios.pop_back();

    // The whole sweep is known up front: hand it to the worker pool
    // (--jobs N) so the loops below read back cached results.
    {
        std::vector<core::RunConfig> sweep;
        for (const auto &scenario : scenarios) {
            for (os::SimMode mode : modes) {
                for (os::CpuModel model : models) {
                    for (const auto &platform : platforms) {
                        for (const auto &wl : benchWorkloads(opts)) {
                            core::RunConfig cfg;
                            cfg.workload = wl;
                            cfg.cpuModel = model;
                            cfg.mode = mode;
                            cfg.platform = platform;
                            if (scenario.per_core)
                                cfg.corun =
                                    host::perPhysicalCore(platform);
                            else if (scenario.per_thread)
                                cfg.corun =
                                    host::perHardwareThread(platform);
                            sweep.push_back(cfg);
                        }
                    }
                }
            }
        }
        cache.prefetch(std::move(sweep));
    }

    core::printBanner(os,
        "Fig. 1: simulation time normalized to Intel_Xeon "
        "(geomean over workloads; < 1 is faster)");

    for (const auto &scenario : scenarios) {
        for (os::SimMode mode : modes) {
            for (os::CpuModel model : models) {
                core::Table table({"Platform", "norm. sim time",
                                   "speedup vs Xeon"});
                // Per-platform geomean of per-workload times.
                std::map<std::string, double> normalized;
                std::vector<double> xeon_times;
                for (const auto &platform : platforms) {
                    std::vector<double> ratios;
                    for (const auto &wl : benchWorkloads(opts)) {
                        core::RunConfig cfg;
                        cfg.workload = wl;
                        cfg.cpuModel = model;
                        cfg.mode = mode;
                        cfg.platform = platforms[0]; // Xeon
                        double xeon =
                            cache.get(cfg).hostSeconds;

                        cfg.platform = platform;
                        if (scenario.per_core)
                            cfg.corun =
                                host::perPhysicalCore(platform);
                        else if (scenario.per_thread)
                            cfg.corun =
                                host::perHardwareThread(platform);
                        ratios.push_back(
                            cache.get(cfg).hostSeconds / xeon);
                    }
                    normalized[platform.name] = geomean(ratios);
                }
                // Normalize to this scenario's Xeon value.
                double xeon_norm = normalized["Intel_Xeon"];
                os << "\n[" << scenario.label << ", "
                   << os::simModeName(mode) << ", "
                   << os::cpuModelName(model) << " CPU]\n";
                for (const auto &platform : platforms) {
                    double norm =
                        normalized[platform.name] / xeon_norm;
                    table.addRow({platform.name, fmtDouble(norm, 3),
                                  fmtDouble(1.0 / norm, 2) + "x"});
                }
                if (opts.csv)
                    table.printCsv(os);
                else
                    table.print(os);
            }
        }
    }

    // §II: SMT off (20 procs) vs SMT on (40 procs) per-process time.
    core::printBanner(os,
        "SMT sensitivity on Intel_Xeon (paper: ~47% less time "
        "per process with SMT off)");
    {
        auto xeon = host::xeonConfig();
        core::RunConfig cfg;
        cfg.workload = "water_nsquared";
        cfg.cpuModel = os::CpuModel::O3;
        cfg.platform = xeon;
        cfg.corun = host::perPhysicalCore(xeon); // 20, SMT off
        double smt_off = cache.get(cfg).hostSeconds;
        cfg.corun = host::perHardwareThread(xeon); // 40, SMT on
        double smt_on = cache.get(cfg).hostSeconds;
        os << "per-process sim time, SMT off / SMT on = "
           << fmtDouble(smt_off / smt_on, 3) << " ("
           << fmtPercent(1.0 - smt_off / smt_on)
           << " less time with SMT off)\n";
    }
    return 0;
}
