/**
 * @file
 * Ablation: SimPoint-style interval sampling versus full-detail
 * simulation.
 *
 * Reference: one uninterrupted O3 run of the long-horizon guest
 * (water_nsquared_long at its largest scale), timed and measured
 * (cycles, IPC, miss rates). Against it, the sampling driver:
 *
 *  - one COLD run (no farm on disk): a single Atomic pass builds the
 *    bounded checkpoint farm, then the K detailed intervals run —
 *    the full price of sampling a never-seen workload;
 *  - WARM runs at several K reusing the farm via its manifest — the
 *    amortized price, which is how SimPoint checkpoints are used in
 *    practice (build once, re-sample for every model/config studied).
 *
 * Each point reports wall-clock speedup and the relative error of
 * every extrapolated metric, i.e. the speedup-vs-accuracy frontier
 * the technique trades along.
 *
 * Writes BENCH_sampling.json. Gate (the PR's acceptance bar): at the
 * gated K the warm sampled estimate must be >= 5x faster than full
 * detail with IPC relative error <= 5%; the cold speedup is reported
 * alongside.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sampling.hh"
#include "sim/clocked_object.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

using namespace g5p;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return (double)std::chrono::duration_cast<
               std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
               .count() /
           1e9;
}

class TotalsVisitor : public sim::stats::Visitor
{
  public:
    void
    value(const std::string &dotted, double v,
          const sim::stats::Info &) override
    {
        totals[dotted] = v;
    }

    double
    missRate(const std::string &unit) const
    {
        auto get = [&](const char *leaf) {
            auto it = totals.find(unit + "." + leaf);
            return it == totals.end() ? 0.0 : it->second;
        };
        double accesses = get("hits") + get("misses");
        return accesses > 0 ? get("misses") / accesses : 0.0;
    }

    std::map<std::string, double> totals;
};

/** The full-detail reference run's measurements. */
struct Reference
{
    double seconds = 0;
    std::uint64_t insts = 0;
    double cycles = 0;
    double ipc = 0;
    double l1dMissRate = 0;
    double l1iMissRate = 0;
};

Reference
runFullDetail(const core::SamplingConfig &cfg)
{
    sim::Simulator sim("system");
    auto wl = workloads::Registry::instance().create(cfg.workload,
                                                     cfg.scale);
    os::SystemConfig sys = cfg.base;
    sys.cpuModel = cfg.detailModel;
    os::System system(sim, sys, *wl);

    auto t0 = std::chrono::steady_clock::now();
    auto res = system.run();
    Reference ref;
    ref.seconds = secondsSince(t0);
    (void)res;

    Tick period =
        sim::ClockDomain::fromMHz(cfg.base.cpuMHz).period();
    TotalsVisitor v;
    sim.visit(v);
    ref.insts = system.totalInsts();
    ref.cycles = (double)sim.curTick() / (double)period;
    ref.ipc = ref.cycles > 0 ? (double)ref.insts / ref.cycles : 0.0;
    ref.l1dMissRate = v.missRate("system.cpu0.dcache");
    ref.l1iMissRate = v.missRate("system.cpu0.icache");
    return ref;
}

double
relErr(double est, double truth)
{
    return truth != 0 ? std::fabs(est - truth) / std::fabs(truth)
                      : std::fabs(est);
}

} // namespace

int
main(int argc, char **argv)
{
    core::SamplingConfig base;
    base.workload = "water_nsquared_long";
    base.scale = 4.0;
    base.detailModel = os::CpuModel::O3;
    base.W = 5000;
    base.warmup = 2000;
    base.seed = 1;
    base.jobs = 1;
    base.farmPrefix = "abl_sfarm";

    std::string json_path = "BENCH_sampling.json";
    unsigned gate_k = 8;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc)
            base.scale = std::atof(argv[++i]);
        else if (arg == "--workload" && i + 1 < argc)
            base.workload = argv[++i];
        else if (arg == "--window" && i + 1 < argc)
            base.W = std::strtoull(argv[++i], nullptr, 0);
        else if (arg == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else if (arg == "--help") {
            std::printf("options: --scale <f> | --workload <name> | "
                        "--window <W> | --json <path>\n");
            return 0;
        }
    }

    std::printf("# abl_sampling: interval sampling vs full-detail "
                "%s on %s (W=%llu)\n",
                os::cpuModelName(base.detailModel),
                base.workload.c_str(),
                (unsigned long long)base.W);

    Reference ref = runFullDetail(base);
    std::printf("\nfull detail: %llu insts, %.0f cycles, "
                "ipc %.4f, l1d %.6f, l1i %.6f, %.3f s\n",
                (unsigned long long)ref.insts, ref.cycles, ref.ipc,
                ref.l1dMissRate, ref.l1iMissRate, ref.seconds);

    struct Point
    {
        const char *phase;
        unsigned k;
        double seconds;
        double speedup;
        double ipcErr;
        double l1dErr;
        double l1iErr;
        core::SamplingResult result;
    };
    std::vector<Point> points;

    auto runPoint = [&](const char *phase, unsigned k) {
        core::SamplingConfig cfg = base;
        cfg.K = k;
        auto t0 = std::chrono::steady_clock::now();
        core::SamplingResult sr = core::runSampledSimulation(cfg);
        double s = secondsSince(t0);

        Point p;
        p.phase = phase;
        p.k = k;
        p.seconds = s;
        p.speedup = ref.seconds / s;
        p.ipcErr = relErr(sr.ipc.mean, ref.ipc);
        p.l1dErr = relErr(sr.l1dMissRate.mean, ref.l1dMissRate);
        p.l1iErr = relErr(sr.l1iMissRate.mean, ref.l1iMissRate);
        std::printf("%6s %4u %10.3f %8.2fx %9.2f%% %9.2f%% "
                    "%9.2f%%\n",
                    phase, k, s, p.speedup, p.ipcErr * 100,
                    p.l1dErr * 100, p.l1iErr * 100);
        p.result = std::move(sr);
        points.push_back(std::move(p));
    };

    // Cold: make sure no farm manifest survives from a previous run,
    // so this point pays for the Atomic farm-building pass.
    std::remove((base.farmPrefix + "-manifest.ckpt").c_str());
    std::printf("\n%6s %4s %10s %9s %10s %10s %10s\n", "phase", "K",
                "wall s", "speedup", "ipc_err", "l1d_err", "l1i_err");
    runPoint("cold", gate_k);

    // Warm: the farm is on disk now; every later run amortizes it.
    for (unsigned k : {4u, 8u, 16u})
        runPoint("warm", k);

    // Remove the farm (boundary indices are multiples of the stride).
    const core::SamplingResult &fr = points.front().result;
    for (std::size_t b = fr.farmStride; b <= fr.intervalsAvailable;
         b += fr.farmStride)
        std::remove((base.farmPrefix + "-" + std::to_string(b) +
                     ".ckpt")
                        .c_str());
    std::remove((base.farmPrefix + "-manifest.ckpt").c_str());

    // ----------------------------------------------------------
    // Gate at warm K=8: the headline claim — sampling's cost once
    // the farm is amortized, which is how a farm is actually used.
    // The cold point and the other K chart the frontier but are
    // reported, not enforced.
    // ----------------------------------------------------------
    const Point *gate_point = nullptr;
    const Point *cold_point = nullptr;
    for (const Point &p : points) {
        if (p.k == gate_k && std::strcmp(p.phase, "warm") == 0)
            gate_point = &p;
        if (std::strcmp(p.phase, "cold") == 0)
            cold_point = &p;
    }

    struct Gate
    {
        const char *name;
        bool applies;
        bool passed;
        std::string detail;
    };
    std::vector<Gate> gates;
    char detail[160];

    std::snprintf(detail, sizeof detail,
                  "warm K=%u sampled run %.2fx faster than full "
                  "detail (gate 5.0x); cold farm build+sample "
                  "%.2fx", gate_k,
                  gate_point ? gate_point->speedup : 0.0,
                  cold_point ? cold_point->speedup : 0.0);
    gates.push_back({"sampling_speedup_5x", gate_point != nullptr,
                     gate_point && gate_point->speedup >= 5.0,
                     detail});
    std::snprintf(detail, sizeof detail,
                  "warm K=%u extrapolated IPC within %.2f%% of full "
                  "detail (gate 5%%)", gate_k,
                  gate_point ? gate_point->ipcErr * 100 : 0.0);
    gates.push_back({"ipc_error_5pct", gate_point != nullptr,
                     gate_point && gate_point->ipcErr <= 0.05,
                     detail});

    bool ok = true;
    std::printf("\ngates:\n");
    for (const Gate &g : gates) {
        const char *status = !g.applies ? "SKIP"
                             : g.passed ? "pass"
                                        : "FAIL";
        std::printf("  %-28s %s  (%s)\n", g.name, status,
                    g.detail.c_str());
        if (g.applies && !g.passed)
            ok = false;
    }

    std::ofstream json(json_path);
    json << "{\n  \"workload\": \"" << base.workload << "\",\n"
         << "  \"scale\": " << base.scale << ",\n"
         << "  \"detail_model\": \""
         << os::cpuModelName(base.detailModel) << "\",\n"
         << "  \"window_insts\": " << base.W << ",\n"
         << "  \"warmup_insts\": " << base.warmup << ",\n"
         << "  \"total_insts\": " << ref.insts << ",\n"
         << "  \"full_detail_seconds\": " << ref.seconds << ",\n"
         << "  \"full_detail_ipc\": " << ref.ipc << ",\n"
         << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        char buf[320];
        std::snprintf(buf, sizeof buf,
                      "    {\"phase\": \"%s\", \"k\": %u, "
                      "\"seconds\": %.6f, "
                      "\"speedup\": %.3f, \"est_ipc\": %.6f, "
                      "\"ipc_stderr\": %.6f, "
                      "\"ipc_rel_error\": %.6f, "
                      "\"l1d_rel_error\": %.6f, "
                      "\"l1i_rel_error\": %.6f}%s\n",
                      p.phase, p.k, p.seconds, p.speedup,
                      p.result.ipc.mean,
                      p.result.ipc.stdErr, p.ipcErr, p.l1dErr,
                      p.l1iErr, i + 1 < points.size() ? "," : "");
        json << buf;
    }
    json << "  ],\n  \"gates\": [\n";
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        json << "    {\"name\": \"" << g.name << "\", \"applies\": "
             << (g.applies ? "true" : "false") << ", \"passed\": "
             << (!g.applies ? "null" : g.passed ? "true" : "false")
             << ", \"detail\": \"" << g.detail << "\"}"
             << (i + 1 < gates.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    if (!json) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
    return ok ? 0 : 1;
}
