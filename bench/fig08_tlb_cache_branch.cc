/**
 * @file
 * Fig. 8: iTLB, dTLB, L1 cache, and branch-prediction performance of
 * gem5 (water_nsquared) across the three platforms. The paper:
 * Intel_Xeon's iTLB/dTLB miss rates are 11.7x/10.5x M1_Ultra's, its
 * dCache miss rate 10-13x, and its branch mispredict rate 0.22% vs
 * ~0.14% on M1.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 8: TLB / L1 / branch performance across platforms "
        "(water_nsquared, O3 CPU)");

    core::Table table({"Platform", "iTLB miss%", "dTLB miss%",
                       "L1I miss%", "L1D miss%", "BP mispredict%"});
    struct Rates
    {
        double itlb, dtlb, l1i, l1d, bp;
    };
    std::map<std::string, Rates> rates;

    for (const auto &platform : host::tableIIPlatforms()) {
        core::RunConfig cfg;
        cfg.workload = "water_nsquared";
        cfg.cpuModel = os::CpuModel::O3;
        cfg.platform = platform;
        const auto &c = cache.get(cfg).counters;
        auto rate = [](std::uint64_t miss, std::uint64_t total) {
            return total ? 100.0 * miss / total : 0.0;
        };
        Rates r{rate(c.itlbMisses, c.itlbAccesses),
                rate(c.dtlbMisses, c.dtlbAccesses),
                rate(c.icacheMisses, c.icacheAccesses),
                rate(c.dcacheMisses, c.dcacheAccesses),
                rate(c.mispredicts, c.branches)};
        rates[platform.name] = r;
        table.addRow({platform.name, fmtDouble(r.itlb, 3) + "%",
                      fmtDouble(r.dtlb, 3) + "%",
                      fmtDouble(r.l1i, 3) + "%",
                      fmtDouble(r.l1d, 3) + "%",
                      fmtDouble(r.bp, 3) + "%"});
    }

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    const auto &xeon = rates["Intel_Xeon"];
    const auto &ultra = rates["M1_Ultra"];
    auto ratio = [](double a, double b) {
        return b > 0 ? a / b : 0.0;
    };
    os << "\nXeon / M1_Ultra ratios: iTLB "
       << fmtDouble(ratio(xeon.itlb, ultra.itlb), 1) << "x, dTLB "
       << fmtDouble(ratio(xeon.dtlb, ultra.dtlb), 1) << "x, L1D "
       << fmtDouble(ratio(xeon.l1d, ultra.l1d), 1)
       << "x (paper: 11.7x, 10.5x, 10.1-13.4x)\n";
    return 0;
}
