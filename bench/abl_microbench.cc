/**
 * @file
 * Google-benchmark microbenchmarks of the substrate components the
 * study rests on: the event queue (gem5's stable core, §VI), the
 * guest cache, the four guest CPU models' simulation rate, and the
 * host-model + synthesizer throughput. These quantify where *our*
 * simulator's time goes, mirroring the paper's methodology applied
 * to itself.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "host/host_core.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/physical.hh"
#include "os/system.hh"
#include "trace/synthesizer.hh"
#include "workloads/workload.hh"

using namespace g5p;

namespace
{

void
BM_EventQueueScheduleService(benchmark::State &state)
{
    sim::EventQueue eq;
    int fired = 0;
    sim::EventFunctionWrapper ev([&] { ++fired; }, "bench");
    Tick when = 1;
    for (auto _ : state) {
        eq.schedule(ev, when);
        eq.serviceOne();
        ++when;
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleService);

void
BM_EventQueueDepth(benchmark::State &state)
{
    // Scheduling cost as a function of queue depth.
    auto depth = (std::size_t)state.range(0);
    sim::EventQueue eq;
    std::vector<std::unique_ptr<sim::EventFunctionWrapper>> events;
    for (std::size_t i = 0; i < depth; ++i) {
        events.push_back(std::make_unique<sim::EventFunctionWrapper>(
            [] {}, "filler"));
        eq.schedule(*events.back(), 1000000 + i);
    }
    sim::EventFunctionWrapper probe([] {}, "probe");
    Tick when = 1;
    for (auto _ : state) {
        eq.schedule(probe, when);
        eq.deschedule(probe);
        benchmark::DoNotOptimize(eq.nextTick());
        ++when;
    }
    state.SetItemsProcessed(state.iterations());
    for (auto &ev : events)
        eq.deschedule(*ev);
}
BENCHMARK(BM_EventQueueDepth)->Arg(16)->Arg(256)->Arg(4096);

void
BM_GuestCacheAtomicAccess(benchmark::State &state)
{
    sim::Simulator sim("bench");
    sim::ClockDomain clock = sim::ClockDomain::fromMHz(2000);
    mem::PhysicalMemory physmem(sim, "physmem", 1 << 20);
    mem::DramCtrl dram(sim, "dram", clock, physmem,
                       mem::DramParams{});
    mem::Cache cache(sim, "l1", clock,
                     mem::CacheParams{32 * 1024, 8, 1, 1, 1, 8,
                                      true});
    cache.memSidePort().bind(dram.port());
    sim.run(0);

    Rng rng(7);
    for (auto _ : state) {
        mem::Packet pkt(mem::MemCmd::ReadReq,
                        rng.below(256 * 1024) & ~7ull, 8);
        benchmark::DoNotOptimize(
            cache.cpuSidePort().recvAtomic(pkt));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuestCacheAtomicAccess);

void
BM_GuestSimulationRate(benchmark::State &state)
{
    // Guest instructions per host second for each CPU model: the
    // Atomic/Timing/Minor/O3 cost hierarchy of mg5 itself.
    auto model = (os::CpuModel)state.range(0);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sim::Simulator sim("bench");
        auto wl = workloads::Registry::instance().create("sieve",
                                                         0.05);
        os::SystemConfig cfg;
        cfg.cpuModel = model;
        os::System system(sim, cfg, *wl);
        system.run();
        insts += system.totalInsts();
    }
    state.SetItemsProcessed((std::int64_t)insts);
    state.SetLabel(os::cpuModelName(model));
}
BENCHMARK(BM_GuestSimulationRate)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void
BM_HostCacheAccess(benchmark::State &state)
{
    host::HostCache cache({32 * 1024, 8, 64});
    Rng rng(11);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 20), false));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostCacheAccess);

void
BM_HostModelThroughput(benchmark::State &state)
{
    // Ops/second through the whole host pipeline model: this bounds
    // how fast profiled simulations can run.
    auto platform = host::xeonConfig();
    host::PageSizePolicy policy(platform.pageBits);
    host::HostCore core(platform, policy);
    Rng rng(13);
    trace::HostOp op;
    for (auto _ : state) {
        op.pc = 0x40'0000 + (rng.below(1 << 21) & ~3ull);
        op.kind = rng.chance(0.3) ? trace::HostOp::Kind::Load
                                  : trace::HostOp::Kind::Alu;
        op.dataAddr = 0x2000'0000 + rng.below(1 << 22);
        op.dataSize = 8;
        core.op(op);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostModelThroughput);

void
BM_SynthesizerExpansion(benchmark::State &state)
{
    // Host instructions generated per recorded scope.
    class NullSink : public trace::HostInstSink
    {
      public:
        void op(const trace::HostOp &) override {}
    } sink;

    auto &reg = trace::FuncRegistry::instance();
    trace::FuncId fid =
        reg.lookup("bench::scope", trace::FuncKind::CpuDetailed);
    trace::CodeLayout layout(reg);
    trace::Synthesizer synth(layout, sink, 17);

    for (auto _ : state) {
        synth.funcEnter(fid);
        synth.dataRef(0x2000'0000, 8, false);
        synth.funcExit(fid);
    }
    state.SetItemsProcessed((std::int64_t)synth.opsEmitted());
}
BENCHMARK(BM_SynthesizerExpansion);

} // namespace

BENCHMARK_MAIN();
