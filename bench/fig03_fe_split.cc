/**
 * @file
 * Fig. 3: front-end bound cycles split into latency vs bandwidth for
 * the gem5 configurations and the SPEC references on Intel_Xeon.
 * The paper's observation: simpler CPU models skew toward bandwidth,
 * more detailed models toward latency.
 */

#include "bench_common.hh"

using namespace g5p;
using namespace g5p::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    RunCache cache(opts);
    std::ostream &os = std::cout;

    core::printBanner(os,
        "Fig. 3: front-end latency vs bandwidth (slots %) on "
        "Intel_Xeon");

    core::Table table({"Config", "FE Latency", "FE Bandwidth",
                       "Latency share of FE"});
    auto add_row = [&](const std::string &label,
                       const core::RunResult &run) {
        const auto &td = run.topdown;
        double fe = td.frontendBound();
        table.addRow({label, fmtPercent(td.frontendLatency),
                      fmtPercent(td.frontendBandwidth),
                      fe > 0 ? fmtPercent(td.frontendLatency / fe)
                             : "-"});
    };

    for (const auto &row : gem5ProfileRows(cache, opts))
        add_row(row.label, *row.run);
    for (const auto &[label, run] : specProfileRows())
        add_row(label, run);

    if (opts.csv)
        table.printCsv(os);
    else
        table.print(os);

    os << "\nPaper reference: detail level shifts gem5's front-end "
          "stalls from\nbandwidth-bound (Atomic) toward "
          "latency-bound (Minor/O3).\n";
    return 0;
}
