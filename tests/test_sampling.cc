/**
 * @file
 * In-run CPU-model switching and interval sampling.
 *
 * SwitchEquivalenceGate is the acceptance gate for the drain-and-
 * switch: for every detailed model, fast-forwarding on Atomic to a
 * boundary and switching in place must be *bit-identical* — stats
 * dump, instruction counts, memory digest, final tick, and the
 * post-boundary commit trace — to building a fresh detailed machine
 * and restoring it from a checkpoint taken at the same boundary.
 *
 * The sampling driver on top is checked for exact boundaries,
 * cross-model safety (an undrained O3 window must refuse to
 * transplant), and serial-vs-pooled byte-identical reports.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/sim_error.hh"
#include "core/experiment.hh"
#include "core/sampling.hh"
#include "host/platforms.hh"
#include "os/system.hh"
#include "sim/serialize.hh"

using namespace g5p;
using namespace g5p::isa;
using namespace g5p::os;

namespace
{

/** Workload built from a lambda, for ad-hoc guest programs. */
class InlineWorkload : public GuestWorkload
{
  public:
    using EmitFn = std::function<void(Assembler &, unsigned)>;

    InlineWorkload(std::string name, EmitFn emit)
        : name_(std::move(name)), emit_(std::move(emit))
    {}

    std::string name() const override { return name_; }

    void
    emit(Assembler &as, unsigned num_cpus, SimMode mode) const override
    {
        emit_(as, num_cpus);
    }

  private:
    std::string name_;
    EmitFn emit_;
};

/**
 * Same mixed loop the checkpoint tests use: stores, dependent loads
 * and branches, so caches, TLBs, the branch predictor and the
 * detailed pipelines all carry real state across the boundary.
 */
const InlineWorkload &
switchWorkload()
{
    static InlineWorkload wl("switch-loop",
                             [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 1500);
        as.li(RegT2, 0x200000);
        as.label("loop");
        as.andi(RegT0, RegS0, 255);
        as.slli(RegT0, RegT0, 3);
        as.add(RegT0, RegT0, RegT2);
        as.sd(RegS0, RegT0, 0);
        as.ld(RegT1, RegT0, 0);
        as.add(RegS1, RegS1, RegT1);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        as.li(RegT0, (std::int64_t)GuestWorkload::resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();
    });
    return wl;
}

/** Everything compared between the switch and restore paths. */
struct Artifacts
{
    std::string stats;
    std::uint64_t result = 0;
    std::uint64_t insts = 0;
    std::uint64_t memDigest = 0;
    Tick finalTick = 0;
};

using CommitTrace = std::vector<std::pair<Tick, Addr>>;

SystemConfig
makeCfg(CpuModel model)
{
    SystemConfig cfg;
    cfg.cpuModel = model;
    return cfg;
}

struct Machine
{
    sim::Simulator sim{"system"};
    System system;
    CommitTrace trace;

    explicit Machine(CpuModel model)
        : system(sim, makeCfg(model), switchWorkload())
    {
        hookCommits();
    }

    /** (Re-)attach the commit trace — needed again after switchCpu
     *  replaces the cores. */
    void
    hookCommits()
    {
        system.cpu(0).setCommitHook(
            [this](Tick t, Addr pc, const isa::StaticInst &) {
                trace.emplace_back(t, pc);
            });
    }

    /** Run to a committed-instruction boundary (exact on Atomic). */
    sim::SimResult
    runTo(std::uint64_t insts)
    {
        system.cpu(0).setInstMilestone(insts, [this] {
            sim.exitSimLoop("boundary", sim::ExitCause::User);
        });
        return system.run();
    }

    Artifacts
    finish()
    {
        auto res = system.run();
        EXPECT_EQ(res.cause, sim::ExitCause::Finished);
        Artifacts a;
        std::ostringstream stats;
        sim.dumpStats(stats);
        a.stats = stats.str();
        a.result = system.result();
        a.insts = system.totalInsts();
        a.memDigest = system.physmem().contentDigest();
        a.finalTick = res.tick;
        return a;
    }
};

std::string
tmpPath(const std::string &tag)
{
    return ::testing::TempDir() + "/g5p_" + tag;
}

void
expectSameArtifacts(const Artifacts &a, const Artifacts &b)
{
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.finalTick, b.finalTick);
    EXPECT_EQ(a.memDigest, b.memDigest);
    EXPECT_EQ(a.stats, b.stats);
}

constexpr std::uint64_t switchBoundary = 4000;

/** The detailed models a fast-forward can switch into. */
constexpr CpuModel detailedModels[] = {CpuModel::Timing,
                                       CpuModel::Minor, CpuModel::O3};

class SwitchEquivalenceGate
    : public ::testing::TestWithParam<CpuModel>
{};

TEST_P(SwitchEquivalenceGate, SwitchMatchesColdRestoreBitExact)
{
    CpuModel target = GetParam();
    std::string path = tmpPath(std::string("switch_") +
                               cpuModelName(target) + ".ckpt");

    // Path A: Atomic to the boundary, checkpoint there (for path B),
    // switch in place, finish on the detailed model.
    Machine ma(CpuModel::Atomic);
    auto part = ma.runTo(switchBoundary);
    ASSERT_EQ(part.cause, sim::ExitCause::User);
    ASSERT_EQ(ma.system.totalInsts(), switchBoundary);
    ASSERT_TRUE(ma.sim.checkpoint(path));
    ASSERT_TRUE(ma.system.switchCpu(target));
    ma.trace.clear();
    ma.hookCommits();
    Artifacts a = ma.finish();
    ASSERT_GT(a.insts, switchBoundary);

    // Path B: a freshly built detailed machine, cold-started from the
    // boundary checkpoint.
    Machine mb(target);
    mb.sim.restore(path);
    Artifacts b = mb.finish();

    expectSameArtifacts(a, b);
    EXPECT_EQ(ma.trace, mb.trace);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Models, SwitchEquivalenceGate,
    ::testing::ValuesIn(detailedModels), [](const auto &info) {
        return std::string(cpuModelName(info.param));
    });

TEST(CpuSwitch, SameModelIsANoop)
{
    Machine m(CpuModel::Atomic);
    m.runTo(switchBoundary);
    EXPECT_TRUE(m.system.switchCpu(CpuModel::Atomic));
    Artifacts a = m.finish();

    Machine ref(CpuModel::Atomic);
    Artifacts b = ref.finish();
    expectSameArtifacts(a, b);
}

TEST(CpuSwitch, RoundTripThroughDetailedModels)
{
    // Atomic -> Timing -> Minor -> Atomic: Timing and Minor sources
    // are always transplantable (no in-window effects), so a chain of
    // switches must preserve the architectural outcome. (O3 as a
    // *source* is refused unless its window drained — see the
    // UndrainedO3WindowRefusesTransplant test.)
    Machine m(CpuModel::Atomic);
    auto part = m.runTo(2000);
    ASSERT_EQ(part.cause, sim::ExitCause::User);
    ASSERT_TRUE(m.system.switchCpu(CpuModel::Timing));
    m.hookCommits();
    part = m.runTo(3000);
    ASSERT_EQ(part.cause, sim::ExitCause::User);
    ASSERT_TRUE(m.system.switchCpu(CpuModel::Minor));
    m.hookCommits();
    part = m.runTo(4000);
    ASSERT_EQ(part.cause, sim::ExitCause::User);
    ASSERT_TRUE(m.system.switchCpu(CpuModel::Atomic));
    m.hookCommits();
    Artifacts a = m.finish();
    EXPECT_GT(a.insts, 4000u);

    // The guest outcome is model-independent.
    Machine ref(CpuModel::Atomic);
    Artifacts b = ref.finish();
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.memDigest, b.memDigest);
}

TEST(CpuSwitch, UndrainedO3WindowRefusesTransplant)
{
    // A mid-run O3 checkpoint may hold in-window instructions whose
    // effects were applied at dispatch; restoring one into another
    // model must throw, not silently drop the window.
    Machine ma(CpuModel::O3);
    Artifacts a = ma.finish();

    sim::CheckpointOut out;
    bool window_nonempty = false;
    // Scan candidate boundaries: at least one mid-run quiescent point
    // of the main loop has an occupied ROB (deterministic, so the
    // first hit always reproduces).
    for (Tick mid = a.finalTick / 2;
         mid < (Tick)(a.finalTick * 3) / 4 && !window_nonempty;
         mid += a.finalTick / 16) {
        Machine mb(CpuModel::O3);
        auto part = mb.system.run(mid);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
        ASSERT_TRUE(mb.sim.advanceToQuiescence());
        sim::CheckpointOut candidate;
        mb.sim.takeCheckpoint(candidate);
        auto in = sim::CheckpointIn::fromText(candidate.toText());
        in.pushSection("system.cpu0");
        std::size_t rob = 0;
        in.param("numRob", rob);
        in.popSection();
        if (rob > 0) {
            out = std::move(candidate);
            window_nonempty = true;
        }
    }
    ASSERT_TRUE(window_nonempty)
        << "no quiescent point with an occupied ROB found";

    Machine mc(CpuModel::Timing);
    auto in = sim::CheckpointIn::fromText(out.toText());
    EXPECT_THROW(mc.sim.restoreCheckpoint(in), CheckpointError);
}

TEST(InstMilestone, ExactOnAtomicAndRearmable)
{
    Machine m(CpuModel::Atomic);
    auto res = m.runTo(1000);
    ASSERT_EQ(res.cause, sim::ExitCause::User);
    EXPECT_EQ(m.system.cpu(0).numInsts(), 1000u);

    // Re-arm for a later boundary and keep going.
    res = m.runTo(2500);
    ASSERT_EQ(res.cause, sim::ExitCause::User);
    EXPECT_EQ(m.system.cpu(0).numInsts(), 2500u);

    auto a = m.finish();
    Machine ref(CpuModel::Atomic);
    expectSameArtifacts(a, ref.finish());
}

TEST(InstMilestone, AtLeastSemanticsOnDetailedModels)
{
    // Wide models may commit past the boundary within the same cycle;
    // the milestone still fires promptly (within one commit width).
    Machine m(CpuModel::O3);
    auto res = m.runTo(1000);
    ASSERT_EQ(res.cause, sim::ExitCause::User);
    EXPECT_GE(m.system.cpu(0).numInsts(), 1000u);
    EXPECT_LE(m.system.cpu(0).numInsts(), 1000u + 8u);
}

TEST(FastForward, RunConfigSwitchesMidRun)
{
    core::RunConfig detailed;
    detailed.workload = "sieve";
    detailed.cpuModel = CpuModel::O3;
    detailed.workloadScale = 0.1;
    detailed.platform = host::xeonConfig();

    core::RunConfig ffwd = detailed;
    ffwd.fastForwardInsts = 5000;

    core::RunResult full = core::runProfiledSimulation(detailed);
    core::RunResult fast = core::runProfiledSimulation(ffwd);

    // Functional outcome is identical; the detailed region shrinks,
    // so simulated time shifts while instruction counts do not.
    EXPECT_TRUE(full.resultOk);
    EXPECT_TRUE(fast.resultOk);
    EXPECT_EQ(full.guestResult, fast.guestResult);
    EXPECT_EQ(full.guestInsts, fast.guestInsts);
    EXPECT_GT(fast.guestInsts, ffwd.fastForwardInsts);
}

TEST(Sampling, DeterministicSerialVsPooled)
{
    core::SamplingConfig cfg;
    cfg.workload = "sieve";
    cfg.scale = 0.5;
    cfg.detailModel = CpuModel::O3;
    cfg.K = 4;
    cfg.W = 2000;
    cfg.seed = 7;
    cfg.farmPrefix = tmpPath("sfarm");

    cfg.jobs = 1;
    core::SamplingResult serial = core::runSampledSimulation(cfg);
    cfg.jobs = 4;
    core::SamplingResult pooled = core::runSampledSimulation(cfg);

    std::ostringstream rs, rp;
    core::printSamplingReport(rs, serial);
    core::printSamplingReport(rp, pooled);
    EXPECT_EQ(rs.str(), rp.str());

    EXPECT_TRUE(serial.resultOk);
    EXPECT_EQ(serial.K, 4u);
    ASSERT_EQ(serial.intervals.size(), 4u);
    EXPECT_GT(serial.ipc.mean, 0.0);
    EXPECT_GT(serial.estCycles, 0.0);
    for (const auto &s : serial.intervals) {
        EXPECT_GE(s.insts, cfg.W);
        EXPECT_LE(s.insts, cfg.W + 8);
        EXPECT_GT(s.ipc, 0.0);
    }
    for (std::size_t k = 0; k < serial.intervals.size(); ++k)
        std::remove((cfg.farmPrefix + "-" +
                     std::to_string(serial.intervals[k].index) +
                     ".ckpt")
                        .c_str());
}

TEST(Sampling, SeedPicksDifferentPhasesDeterministically)
{
    core::SamplingConfig cfg;
    cfg.workload = "sieve";
    cfg.scale = 0.5;
    cfg.detailModel = CpuModel::Timing;
    cfg.K = 2;
    cfg.W = 2000;
    cfg.farmPrefix = tmpPath("sfarm_seed");

    cfg.seed = 1;
    core::SamplingResult r1 = core::runSampledSimulation(cfg);
    core::SamplingResult r1b = core::runSampledSimulation(cfg);
    cfg.seed = 2;
    core::SamplingResult r2 = core::runSampledSimulation(cfg);

    std::ostringstream a, b, c;
    core::printSamplingReport(a, r1);
    core::printSamplingReport(b, r1b);
    core::printSamplingReport(c, r2);
    EXPECT_EQ(a.str(), b.str());   // same seed: byte-identical
    ASSERT_EQ(r1.intervals.size(), r2.intervals.size());
    EXPECT_NE(r1.intervals[0].index, r2.intervals[0].index);

    for (const auto &r : {r1, r2})
        for (const auto &s : r.intervals)
            std::remove((cfg.farmPrefix + "-" +
                         std::to_string(s.index) + ".ckpt")
                            .c_str());
}

TEST(Sampling, OversizedWindowThrowsConfigError)
{
    core::SamplingConfig cfg;
    cfg.workload = "sieve";
    cfg.scale = 0.1;
    cfg.W = 1ull << 40;
    cfg.farmPrefix = tmpPath("sfarm_bad");
    EXPECT_THROW(core::runSampledSimulation(cfg), ConfigError);
}

} // namespace
