/**
 * @file
 * Unit tests for the base utilities: PRNG, string helpers, address
 * arithmetic.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/addr_utils.hh"
#include "base/random.hh"
#include "base/str.hh"

using namespace g5p;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.below(1), 0u);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values reachable
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(5);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, GeometricMeanRoughlyRight)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += (double)rng.geometric(10.0);
    EXPECT_NEAR(sum / 20000, 10.0, 1.0);
}

TEST(Rng, HashStringStableAndDistinct)
{
    EXPECT_EQ(Rng::hashString("abc"), Rng::hashString("abc"));
    EXPECT_NE(Rng::hashString("abc"), Rng::hashString("abd"));
    EXPECT_NE(Rng::hashString(""), Rng::hashString("a"));
}

TEST(Str, Split)
{
    auto parts = split("a.b..c", '.');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
    EXPECT_TRUE(split("", '.').empty());
}

TEST(Str, FmtPercent)
{
    EXPECT_EQ(fmtPercent(0.415), "41.5%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(Str, FmtBytes)
{
    EXPECT_EQ(fmtBytes(512), "512B");
    EXPECT_EQ(fmtBytes(8 * 1024), "8KB");
    EXPECT_EQ(fmtBytes(3 * 1024 * 1024), "3MB");
    EXPECT_EQ(fmtBytes(3250585), "3.1MB");
}

TEST(Str, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcde", 4), "abcde");
}

TEST(AddrUtils, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(AddrUtils, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(AddrUtils, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200u);
}

/** Property sweep: set index and tag reconstruct the line address. */
class CacheIndexing
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(CacheIndexing, TagSetRoundTrip)
{
    auto [line_bytes, num_sets] = GetParam();
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        Addr a = rng.next() & 0xffff'ffff'ffffULL;
        auto set = cacheSetIndex(a, line_bytes, num_sets);
        auto tag = cacheTag(a, line_bytes, num_sets);
        Addr line = a / line_bytes;
        EXPECT_EQ((tag << floorLog2(num_sets)) | set, line);
        EXPECT_LT(set, num_sets);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheIndexing,
    ::testing::Combine(::testing::Values(32u, 64u, 128u),
                       ::testing::Values(16u, 64u, 512u, 4096u)));
