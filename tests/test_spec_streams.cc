/**
 * @file
 * Tests for the SPEC reference stream generators: determinism, mix
 * fidelity to their configs, and the documented relative characters
 * of the three benchmarks.
 */

#include <gtest/gtest.h>

#include "workloads/spec_streams.hh"

using namespace g5p;
using namespace g5p::workloads;
using trace::HostOp;

namespace
{

struct MixSink : trace::HostInstSink
{
    std::uint64_t ops = 0, branches = 0, loads = 0, stores = 0;
    std::uint64_t taken = 0;
    HostAddr minPc = ~0ull, maxPc = 0;
    HostAddr maxData = 0;

    void
    op(const HostOp &op) override
    {
        ++ops;
        minPc = std::min(minPc, op.pc);
        maxPc = std::max(maxPc, op.pc);
        switch (op.kind) {
          case HostOp::Kind::Branch:
            ++branches;
            taken += op.taken;
            break;
          case HostOp::Kind::Load:
            ++loads;
            maxData = std::max(maxData, op.dataAddr);
            break;
          case HostOp::Kind::Store:
            ++stores;
            break;
          default:
            break;
        }
    }
};

MixSink
runStream(SpecStreamConfig cfg, std::uint64_t insts = 300000,
          std::uint64_t seed = 1)
{
    cfg.insts = insts;
    MixSink sink;
    SpecStreamGenerator(cfg, seed).run(sink);
    return sink;
}

} // namespace

TEST(SpecStreams, ThreeReferenceConfigs)
{
    auto streams = specReferenceStreams();
    ASSERT_EQ(streams.size(), 3u);
    EXPECT_EQ(streams[0].name, "525.x264_r");
    EXPECT_EQ(streams[1].name, "531.deepsjeng_r");
    EXPECT_EQ(streams[2].name, "505.mcf_r");
}

TEST(SpecStreams, EmitsExactlyConfiguredLength)
{
    auto sink = runStream(specX264(), 12345);
    EXPECT_EQ(sink.ops, 12345u);
}

TEST(SpecStreams, DeterministicPerSeed)
{
    auto a = runStream(specMcf(), 50000, 7);
    auto b = runStream(specMcf(), 50000, 7);
    auto c = runStream(specMcf(), 50000, 8);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_NE(a.taken, c.taken);
}

TEST(SpecStreams, MixTracksConfig)
{
    auto cfg = specDeepsjeng();
    auto sink = runStream(cfg);
    double branch_frac = (double)sink.branches / sink.ops;
    double load_frac = (double)sink.loads / sink.ops;
    double store_frac = (double)sink.stores / sink.ops;
    EXPECT_NEAR(branch_frac, 1.0 / cfg.instsPerBranch, 0.05);
    EXPECT_NEAR(load_frac, cfg.loadFraction, 0.05);
    EXPECT_NEAR(store_frac, cfg.storeFraction, 0.04);
}

TEST(SpecStreams, CodeStaysInFootprint)
{
    auto cfg = specX264();
    auto sink = runStream(cfg);
    EXPECT_LE(sink.maxPc - sink.minPc, cfg.codeFootprintBytes);
}

TEST(SpecStreams, ColdDataReachesBigRegion)
{
    // mcf chases pointers across GBs; x264 stays near its frames.
    auto mcf = runStream(specMcf());
    auto x264 = runStream(specX264());
    EXPECT_GT(mcf.maxData, x264.maxData);
    EXPECT_GT(mcf.maxData, 1ull << 32); // beyond the 4GB cold base
}

TEST(SpecStreams, BiasedSitesMostlyConsistent)
{
    // With a high biased fraction, the dynamic taken rate must be
    // far from 50% noise in aggregate at most sites; a crude proxy:
    // overall taken fraction is stable across seeds.
    auto a = runStream(specX264(), 200000, 1);
    auto b = runStream(specX264(), 200000, 2);
    double fa = (double)a.taken / a.branches;
    double fb = (double)b.taken / b.branches;
    EXPECT_NEAR(fa, fb, 0.01);
}
