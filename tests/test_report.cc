/**
 * @file
 * Tests for the reporting layer: table formatting, CSV output,
 * Top-Down row extraction, and the printed tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/report.hh"
#include "core/topdown.hh"

using namespace g5p;
using namespace g5p::core;

namespace
{

host::TopdownBreakdown
sampleBreakdown()
{
    host::TopdownBreakdown td;
    td.retiring = 0.50;
    td.badSpeculation = 0.10;
    td.feIcache = 0.12;
    td.feItlb = 0.03;
    td.feMispredictResteers = 0.05;
    td.feUnknownBranches = 0.02;
    td.feClearResteers = 0.0;
    td.frontendLatency = 0.22;
    td.feMite = 0.07;
    td.feDsb = 0.01;
    td.frontendBandwidth = 0.08;
    td.beMemory = 0.06;
    td.beCore = 0.04;
    td.backendBound = 0.10;
    return td;
}

} // namespace

TEST(Report, TableAlignsColumns)
{
    Table table({"Name", "Value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "23456"});
    std::ostringstream os;
    table.print(os);
    std::string out = os.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("23456"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Report, TablePadsMissingCells)
{
    Table table({"A", "B", "C"});
    table.addRow({"only"});
    std::ostringstream os;
    table.print(os); // must not crash; short rows padded
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Report, CsvOutput)
{
    Table table({"x", "y"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Report, Banner)
{
    std::ostringstream os;
    printBanner(os, "Title");
    EXPECT_NE(os.str().find("=== Title ==="), std::string::npos);
}

TEST(TopdownRows, LevelOneSumsToOne)
{
    auto rows = levelOneRows(sampleBreakdown());
    ASSERT_EQ(rows.size(), 4u);
    double total = 0;
    for (const auto &row : rows)
        total += row.fraction;
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_EQ(rows[0].label, "Retiring");
    EXPECT_DOUBLE_EQ(rows[0].fraction, 0.50);
}

TEST(TopdownRows, FrontendSplitsAreConsistent)
{
    auto td = sampleBreakdown();
    auto split = frontendSplitRows(td);
    ASSERT_EQ(split.size(), 2u);
    EXPECT_NEAR(split[0].fraction + split[1].fraction,
                td.frontendBound(), 1e-12);

    auto latency = frontendLatencyRows(td);
    double lat_total = 0;
    for (const auto &row : latency)
        lat_total += row.fraction;
    EXPECT_NEAR(lat_total, td.frontendLatency, 1e-12);

    auto bandwidth = frontendBandwidthRows(td);
    double bw_total = 0;
    for (const auto &row : bandwidth)
        bw_total += row.fraction;
    EXPECT_NEAR(bw_total, td.frontendBandwidth, 1e-12);
}

TEST(TopdownRows, TreePrintsEveryCategory)
{
    std::ostringstream os;
    printTopdownTree(os, sampleBreakdown());
    std::string out = os.str();
    for (const char *needle :
         {"Retiring", "Bad Speculation", "Front-End Bound",
          "ICache Misses", "ITLB Misses", "Mispredict Resteers",
          "Unknown Branches", "MITE", "DSB", "Back-End Bound",
          "Memory Bound", "Core Bound", "50.0%"}) {
        EXPECT_NE(out.find(needle), std::string::npos)
            << "missing " << needle;
    }
}
