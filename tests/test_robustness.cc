/**
 * @file
 * Supervised-simulation robustness: typed errors, the deadlock/
 * livelock watchdog, deterministic fault injection, and crash-safe
 * checkpointing, driven end-to-end on full machines.
 *
 * The scenarios mirror what a long profiling campaign actually hits:
 * a lost memory response wedging a CPU (deadlock), an event storm at
 * one tick (livelock), runaway runs (budgets), DRAM bit flips,
 * flaky checkpoint I/O, truncated/corrupt checkpoint files, and a
 * killed run recovered from its last auto-checkpoint.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/sim_error.hh"
#include "mem/fault_injector.hh"
#include "os/system.hh"
#include "sim/serialize.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::isa;
using namespace g5p::os;

namespace
{

/** Workload built from a lambda, for ad-hoc guest programs. */
class InlineWorkload : public GuestWorkload
{
  public:
    using EmitFn = std::function<void(Assembler &, unsigned)>;

    InlineWorkload(std::string name, EmitFn emit)
        : name_(std::move(name)), emit_(std::move(emit))
    {}

    std::string name() const override { return name_; }

    void
    emit(Assembler &as, unsigned num_cpus, SimMode mode) const override
    {
        emit_(as, num_cpus);
    }

  private:
    std::string name_;
    EmitFn emit_;
};

/**
 * A store/load/branch loop over a 2KB window at 0x200000 — enough
 * memory traffic to exercise caches and, on Timing CPUs, the full
 * request/response path the fault injector interposes on.
 */
const InlineWorkload &
loopWorkload()
{
    static InlineWorkload wl("rb-loop", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 1200);
        as.li(RegT2, 0x200000);
        as.label("loop");
        as.andi(RegT0, RegS0, 255);
        as.slli(RegT0, RegT0, 3);
        as.add(RegT0, RegT0, RegT2);
        as.sd(RegS0, RegT0, 0);
        as.ld(RegT1, RegT0, 0);
        as.add(RegS1, RegS1, RegT1);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        as.li(RegT0, (std::int64_t)GuestWorkload::resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();
    });
    return wl;
}

SystemConfig
makeCfg(CpuModel model, unsigned cores = 1)
{
    SystemConfig cfg;
    cfg.cpuModel = model;
    cfg.mode = SimMode::SE;
    cfg.numCpus = cores;
    return cfg;
}

/** Everything we compare between reference and recovered runs. */
struct Artifacts
{
    std::string stats;
    std::uint64_t result = 0;
    std::uint64_t insts = 0;
    std::uint64_t memDigest = 0;
    Tick finalTick = 0;
};

/** One machine, optionally with a fault injector attached. */
struct Machine
{
    sim::Simulator sim{"system"};
    System system;
    std::unique_ptr<mem::FaultInjector> injector;

    explicit Machine(CpuModel model,
                     const mem::FaultInjectorParams *faults = nullptr,
                     unsigned cores = 1)
        : system(sim, makeCfg(model, cores), loopWorkload())
    {
        if (faults) {
            injector = std::make_unique<mem::FaultInjector>(
                sim, "faultinjector", *faults);
            injector->setMemory(&system.physmem());
        }
    }

    Artifacts
    finish(Tick tick_limit = maxTick)
    {
        auto res = system.run(tick_limit);
        EXPECT_EQ(res.cause, sim::ExitCause::Finished);
        Artifacts a;
        std::ostringstream stats;
        sim.dumpStats(stats);
        a.stats = stats.str();
        a.result = system.result();
        a.insts = system.totalInsts();
        a.memDigest = system.physmem().contentDigest();
        a.finalTick = res.tick;
        return a;
    }
};

/** The uninterrupted reference for @p model, computed once. */
const Artifacts &
reference(CpuModel model)
{
    static Artifacts atomicRef, timingRef;
    Artifacts &slot =
        model == CpuModel::Atomic ? atomicRef : timingRef;
    if (slot.finalTick == 0) {
        Machine m(model);
        slot = m.finish();
    }
    return slot;
}

std::string
tmpPath(const std::string &tag)
{
    return ::testing::TempDir() + "/g5p_rb_" + tag + ".ckpt";
}

// ---------------------------------------------------------------------
// Watchdog: livelock, budgets, deadlock.
// ---------------------------------------------------------------------

TEST(Watchdog, LivelockDetected)
{
    sim::Simulator simr("system");
    auto &q = simr.eventq();
    sim::EventFunctionWrapper ev(
        [&] { q.schedule(ev, q.curTick()); }, "spin");
    q.schedule(ev, 0);

    sim::RunOptions run;
    run.supervise = true;
    run.watchdog.livelockEvents = 64;
    run.watchdog.flightRecorderDepth = 16;
    simr.configure(run);
    auto res = simr.run();

    EXPECT_EQ(res.cause, sim::ExitCause::Livelock);
    EXPECT_TRUE(sim::isSupervisedExit(res.cause));
    EXPECT_FALSE(res.diagnostic.empty());
    EXPECT_NE(res.diagnostic.find("pending events"),
              std::string::npos);
    EXPECT_NE(res.diagnostic.find("'spin'"), std::string::npos);
    EXPECT_EQ(simr.flightRecords().size(), 16u);

    if (ev.scheduled())
        q.deschedule(ev);
}

TEST(Watchdog, EventBudgetExhausted)
{
    sim::Simulator simr("system");
    auto &q = simr.eventq();
    sim::EventFunctionWrapper ev(
        [&] { q.schedule(ev, q.curTick() + 1); }, "ticker");
    q.schedule(ev, 0);

    sim::RunOptions run;
    run.supervise = true;
    run.watchdog.maxEvents = 500;
    simr.configure(run);
    auto res = simr.run();

    EXPECT_EQ(res.cause, sim::ExitCause::WatchdogTimeout);
    EXPECT_NE(res.message.find("event budget"), std::string::npos);
    EXPECT_FALSE(res.diagnostic.empty());

    if (ev.scheduled())
        q.deschedule(ev);
}

TEST(Watchdog, WallClockBudgetExhausted)
{
    sim::Simulator simr("system");
    auto &q = simr.eventq();
    sim::EventFunctionWrapper ev(
        [&] { q.schedule(ev, q.curTick() + 1); }, "ticker");
    q.schedule(ev, 0);

    sim::RunOptions run;
    run.supervise = true;
    run.watchdog.maxWallSeconds = 0.02;
    simr.configure(run);
    auto res = simr.run();

    EXPECT_EQ(res.cause, sim::ExitCause::WatchdogTimeout);
    EXPECT_NE(res.message.find("wall-clock"), std::string::npos);

    if (ev.scheduled())
        q.deschedule(ev);
}

TEST(Watchdog, DeadlockOnDroppedResponse)
{
    // Drop exactly one timing response: the requesting CPU waits
    // forever, the event queue drains, and the activity probe turns
    // the empty queue into a Deadlock report instead of the silent
    // EventQueueEmpty a finished run would produce.
    mem::FaultInjectorParams fp;
    fp.seed = 7;
    fp.dropChance = 1.0;
    fp.respFaultMax = 1;

    Machine m(CpuModel::Timing, &fp);
    auto res = m.system.run();

    EXPECT_EQ(res.cause, sim::ExitCause::Deadlock);
    EXPECT_EQ(m.injector->dropsInjected(), 1u);
    EXPECT_FALSE(res.diagnostic.empty());
    EXPECT_NE(res.diagnostic.find("machine state"), std::string::npos);
    EXPECT_NE(res.diagnostic.find("[running]"), std::string::npos);
}

TEST(Watchdog, CleanRunUnaffected)
{
    // A watchdog with generous limits must not perturb a healthy run.
    Machine m(CpuModel::Timing);
    sim::RunOptions run;
    run.supervise = true;
    run.watchdog.livelockEvents = 1u << 20;
    run.watchdog.maxEvents = 1ull << 40;
    m.sim.configure(run);
    Artifacts a = m.finish();
    EXPECT_EQ(a.result, reference(CpuModel::Timing).result);
    EXPECT_EQ(a.finalTick, reference(CpuModel::Timing).finalTick);
}

// ---------------------------------------------------------------------
// Fault injection: bit flips, delayed responses, flaky I/O.
// ---------------------------------------------------------------------

TEST(FaultInjection, BitFlipCorruptsMemoryDigest)
{
    const Artifacts &ref = reference(CpuModel::Atomic);

    // Flip one bit in a byte the workload's page holds but never
    // rewrites (the loop writes offsets 0..2047; 0x200800 is beyond
    // them in the same touched page), so the corruption is still
    // visible in the final image no matter when it lands.
    mem::FaultInjectorParams fp;
    fp.seed = 11;
    fp.bitFlips = 1;
    fp.flipBase = 0x200800;
    fp.flipBytes = 8;
    fp.firstFlipAt = ref.finalTick / 2;

    Machine m(CpuModel::Atomic, &fp);
    Artifacts a = m.finish();

    EXPECT_EQ(m.injector->flipsInjected(), 1u);
    EXPECT_NE(a.memDigest, ref.memDigest);
    // Architectural execution is untouched; only memory content
    // differs.
    EXPECT_EQ(a.insts, ref.insts);
}

TEST(FaultInjection, DelayedResponsesKeepResultCorrect)
{
    // Delaying responses must stretch time, never corrupt data: the
    // guest result is timing-independent.
    mem::FaultInjectorParams fp;
    fp.seed = 13;
    fp.delayChance = 1.0;
    fp.delayTicks = 500;
    fp.respFaultMax = 4;

    Machine m(CpuModel::Timing, &fp);
    Artifacts a = m.finish();

    EXPECT_EQ(m.injector->delaysInjected(), 4u);
    EXPECT_EQ(a.result, reference(CpuModel::Timing).result);
    EXPECT_EQ(a.insts, reference(CpuModel::Timing).insts);
    EXPECT_GE(a.finalTick, reference(CpuModel::Timing).finalTick);
}

TEST(FaultInjection, ResponseFaultsArePerCoreOnTwoCores)
{
    // PR 8 determinism contract: response faults draw from a
    // per-requesting-core stream and respFaultMax bounds faults per
    // core — core 0's fault pattern cannot depend on core 1's
    // traffic volume.
    mem::FaultInjectorParams fp;
    fp.seed = 21;
    fp.delayChance = 1.0;
    fp.delayTicks = 400;
    fp.respFaultMax = 2;

    Machine m(CpuModel::Timing, &fp, 2);
    auto res = m.system.run();
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);

    // Each core absorbed its own cap's worth of delays.
    EXPECT_EQ(m.injector->delaysInjectedOn(0), 2u);
    EXPECT_EQ(m.injector->delaysInjectedOn(1), 2u);
    EXPECT_GE(m.injector->delaysInjected(), 4u);
    EXPECT_EQ(m.injector->dropsInjected(), 0u);

    // Delays stretch time; they never corrupt data.
    Machine clean(CpuModel::Timing, nullptr, 2);
    auto clean_res = clean.system.run();
    ASSERT_EQ(clean_res.cause, sim::ExitCause::Finished);
    EXPECT_EQ(m.system.result(), clean.system.result());
    EXPECT_EQ(m.system.totalInsts(), clean.system.totalInsts());
    EXPECT_GE(res.tick, clean_res.tick);
}

TEST(FaultInjection, FlipScheduleIndependentOfCoreCountAndModel)
{
    // The bit-flip schedule draws from a dedicated stream: the same
    // params produce the same (address, bit) sequence no matter how
    // many cores run or which CPU model drives the traffic.
    mem::FaultInjectorParams fp;
    fp.seed = 31;
    fp.bitFlips = 3;
    fp.flipBase = 0x200800; // outside the loop's data window
    fp.flipBytes = 64;
    fp.firstFlipAt = 0;
    fp.flipPeriod = 500;

    Machine one(CpuModel::Atomic, &fp, 1);
    ASSERT_EQ(one.system.run().cause, sim::ExitCause::Finished);
    Machine two(CpuModel::Atomic, &fp, 2);
    ASSERT_EQ(two.system.run().cause, sim::ExitCause::Finished);
    Machine timing(CpuModel::Timing, &fp, 1);
    ASSERT_EQ(timing.system.run().cause, sim::ExitCause::Finished);

    ASSERT_EQ(one.injector->flipLog().size(), 3u);
    EXPECT_EQ(one.injector->flipLog(), two.injector->flipLog());
    EXPECT_EQ(one.injector->flipLog(), timing.injector->flipLog());
}

TEST(FaultInjection, CheckpointWriteRetriesThroughTransientFailure)
{
    sim::Simulator simr("system");
    mem::FaultInjectorParams fp;
    fp.failWrites = 2;
    mem::FaultInjector inj(simr, "faultinjector", fp);

    sim::CheckpointOut cp;
    cp.param("answer", std::string("42"));
    std::string path = tmpPath("retry");
    cp.writeFile(path); // default 3 attempts: 2 fail, 3rd lands

    EXPECT_EQ(inj.ioFaultsInjected(), 2u);
    auto in = sim::CheckpointIn::readFile(path);
    std::string answer;
    in.param("answer", answer);
    EXPECT_EQ(answer, "42");
    std::remove(path.c_str());
}

TEST(FaultInjection, CheckpointWritePermanentFailureThrows)
{
    sim::Simulator simr("system");
    mem::FaultInjectorParams fp;
    fp.failWrites = 10;
    mem::FaultInjector inj(simr, "faultinjector", fp);

    sim::CheckpointOut cp;
    cp.param("answer", std::string("42"));
    std::string path = tmpPath("permfail");
    EXPECT_THROW(cp.writeFile(path), CheckpointError);
    // Atomic-write contract: a failed write leaves neither the final
    // file nor a temp file behind.
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(FaultInjection, CheckpointReadFailureThrows)
{
    std::string path = tmpPath("readfail");
    {
        sim::CheckpointOut cp;
        cp.param("answer", std::string("42"));
        cp.writeFile(path);
    }
    sim::Simulator simr("system");
    mem::FaultInjectorParams fp;
    fp.failReads = 1;
    mem::FaultInjector inj(simr, "faultinjector", fp);

    EXPECT_THROW(sim::CheckpointIn::readFile(path), CheckpointError);
    // The next attempt (fault budget spent) succeeds.
    auto in = sim::CheckpointIn::readFile(path);
    std::string answer;
    in.param("answer", answer);
    EXPECT_EQ(answer, "42");
    std::remove(path.c_str());
}

TEST(FaultInjection, AutoCheckpointSurvivesIoFailure)
{
    // All three write attempts of the first auto-checkpoint fail; the
    // run must shrug it off (warn + continue) and still finish with
    // the correct result.
    const Artifacts &ref = reference(CpuModel::Atomic);

    mem::FaultInjectorParams fp;
    fp.failWrites = 3;

    Machine m(CpuModel::Atomic, &fp);
    std::string prefix = ::testing::TempDir() + "/g5p_rb_autofail";
    sim::RunOptions run;
    run.autoCheckpointPeriod = ref.finalTick / 2;
    run.autoCheckpointPrefix = prefix;
    m.sim.configure(run);
    Artifacts a = m.finish();

    EXPECT_EQ(a.result, ref.result);
    EXPECT_EQ(m.injector->ioFaultsInjected(), 3u);

    namespace fs = std::filesystem;
    for (const auto &ent :
         fs::directory_iterator(::testing::TempDir())) {
        std::string name = ent.path().filename().string();
        if (name.rfind("g5p_rb_autofail-", 0) == 0)
            fs::remove(ent.path());
    }
}

TEST(FaultInjection, CheckpointRetryOptionsAreHonored)
{
    // RunOptions::checkpointRetry tunes how hard Simulator::
    // checkpoint fights transient I/O failure (the sweep service
    // raises it for long campaigns).
    const Artifacts &ref = reference(CpuModel::Atomic);

    // Loosened budget: five attempts ride through four failures.
    {
        mem::FaultInjectorParams fp;
        fp.failWrites = 4;
        Machine m(CpuModel::Atomic, &fp);
        sim::RunOptions run;
        run.checkpointRetry.maxAttempts = 5;
        run.checkpointRetry.backoffBaseMs = 0.01;
        m.sim.configure(run);
        auto part = m.system.run(ref.finalTick / 2);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);

        std::string path = tmpPath("retrycfg");
        EXPECT_TRUE(m.sim.checkpoint(path));
        EXPECT_EQ(m.injector->ioFaultsInjected(), 4u);
        EXPECT_NO_THROW(sim::CheckpointIn::readFile(path));
        std::remove(path.c_str());
    }

    // Tightened budget: a single attempt fails fast (callers that
    // would rather requeue the job than block on backoff).
    {
        mem::FaultInjectorParams fp;
        fp.failWrites = 1;
        Machine m(CpuModel::Atomic, &fp);
        sim::RunOptions run;
        run.checkpointRetry.maxAttempts = 1;
        m.sim.configure(run);
        auto part = m.system.run(ref.finalTick / 2);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);

        std::string path = tmpPath("retrycfg_tight");
        EXPECT_THROW(m.sim.checkpoint(path), CheckpointError);
        EXPECT_FALSE(std::filesystem::exists(path));
        EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    }
}

// ---------------------------------------------------------------------
// Crash-safe checkpointing: truncation, corruption, kill-and-recover.
// ---------------------------------------------------------------------

/** Run to @p stop_at, checkpoint, return the path. */
std::string
writeMidRunCheckpoint(const std::string &tag)
{
    const Artifacts &ref = reference(CpuModel::Atomic);
    std::string path = tmpPath(tag);
    Machine m(CpuModel::Atomic);
    auto part = m.system.run(ref.finalTick / 2);
    EXPECT_EQ(part.cause, sim::ExitCause::TickLimit);
    EXPECT_TRUE(m.sim.checkpoint(path));
    return path;
}

TEST(CrashSafety, TruncatedCheckpointRejected)
{
    std::string path = writeMidRunCheckpoint("trunc");

    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        text = os.str();
    }
    ASSERT_GT(text.size(), 100u);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }

    Machine m(CpuModel::Atomic);
    try {
        m.sim.restore(path);
        FAIL() << "restore of a truncated checkpoint succeeded";
    } catch (const CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(CrashSafety, CorruptedCheckpointRejected)
{
    std::string path = writeMidRunCheckpoint("corrupt");

    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        text = os.str();
    }
    // Flip one digit in the middle of the body; the checksum footer
    // no longer matches.
    std::size_t pos = text.find("=1");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 1] = '2';
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text;
    }

    Machine m(CpuModel::Atomic);
    try {
        m.sim.restore(path);
        FAIL() << "restore of a corrupt checkpoint succeeded";
    } catch (const CheckpointError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Checkpoint);
        EXPECT_NE(std::string(e.what()).find("corrupt"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(CrashSafety, KillAndRecoverBitIdentical)
{
    // The flagship scenario: a run with periodic auto-checkpoints is
    // abandoned mid-flight (process killed); a fresh machine restores
    // the last auto-checkpoint and must finish bit-identical to an
    // uninterrupted run.
    const Artifacts &ref = reference(CpuModel::Atomic);
    std::string prefix = ::testing::TempDir() + "/g5p_rb_kill";

    namespace fs = std::filesystem;
    auto sweep = [&] {
        std::vector<std::string> found;
        for (const auto &ent :
             fs::directory_iterator(::testing::TempDir())) {
            std::string name = ent.path().filename().string();
            if (name.rfind("g5p_rb_kill-", 0) == 0)
                found.push_back(ent.path().string());
        }
        return found;
    };
    for (const auto &p : sweep())
        fs::remove(p);

    {
        Machine killed(CpuModel::Atomic);
        sim::RunOptions run;
        run.autoCheckpointPeriod = ref.finalTick / 4;
        run.autoCheckpointPrefix = prefix;
        killed.sim.configure(run);
        auto part = killed.system.run(ref.finalTick * 6 / 10);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
        // The machine is destroyed here with work outstanding — the
        // in-process equivalent of kill -9.
    }

    auto written = sweep();
    ASSERT_FALSE(written.empty()) << "no auto-checkpoint was written";
    auto tick_of = [&](const std::string &p) {
        std::string n = fs::path(p).filename().string();
        std::size_t dash = n.rfind('-');
        return std::stoull(n.substr(dash + 1,
                                    n.size() - dash - 6));
    };
    std::string latest = *std::max_element(
        written.begin(), written.end(),
        [&](const std::string &x, const std::string &y) {
            return tick_of(x) < tick_of(y);
        });

    Machine recovered(CpuModel::Atomic);
    recovered.sim.restore(latest);
    Artifacts a = recovered.finish();

    EXPECT_EQ(a.result, ref.result);
    EXPECT_EQ(a.insts, ref.insts);
    EXPECT_EQ(a.finalTick, ref.finalTick);
    EXPECT_EQ(a.memDigest, ref.memDigest);
    EXPECT_EQ(a.stats, ref.stats);

    for (const auto &p : sweep())
        fs::remove(p);
}

// ---------------------------------------------------------------------
// Typed-error contract: the remaining conversion sites.
// ---------------------------------------------------------------------

TEST(TypedErrors, QuiescenceBudgetExhaustionThrows)
{
    sim::Simulator simr("system");
    auto &q = simr.eventq();
    // A perpetual chain of transient events: the queue is never
    // quiescent, so the seek must give up with a typed error rather
    // than spin forever.
    std::function<void()> chain = [&] {
        auto *ev = new sim::EventFunctionWrapper(chain, "chain");
        ev->setAutoDelete(true);
        q.schedule(ev, q.curTick() + 1);
    };
    chain();

    try {
        simr.advanceToQuiescence(1000);
        FAIL() << "expected InvariantError";
    } catch (const InvariantError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Invariant);
        EXPECT_NE(std::string(e.what()).find("quiescent"),
                  std::string::npos);
        EXPECT_GT(e.line(), 0);
    }
}

TEST(TypedErrors, RestoreNonexistentPathThrows)
{
    sim::Simulator simr("system");
    EXPECT_THROW(
        simr.restore(::testing::TempDir() + "/g5p_rb_missing.ckpt"),
        CheckpointError);
}

TEST(TypedErrors, RegisterSerialCollisionThrows)
{
    sim::Simulator simr("system");
    auto &q = simr.eventq();
    sim::EventFunctionWrapper a([] {}, "a");
    sim::EventFunctionWrapper b([] {}, "b");
    q.registerSerial("dup.tag", &a);
    EXPECT_THROW(q.registerSerial("dup.tag", &b), InvariantError);
    q.unregisterSerial("dup.tag");
}

TEST(TypedErrors, UnknownWorkloadThrows)
{
    try {
        workloads::Registry::instance().create("no_such_workload", 1);
        FAIL() << "expected WorkloadError";
    } catch (const WorkloadError &e) {
        EXPECT_NE(std::string(e.what()).find("no_such_workload"),
                  std::string::npos);
        // The message lists the known workloads to help the user.
        EXPECT_NE(std::string(e.what()).find("sieve"),
                  std::string::npos);
    }
}

TEST(TypedErrors, ErrorCarriesContext)
{
    sim::Simulator simr("system");
    try {
        simr.restore("/nonexistent/g5p.ckpt");
        FAIL() << "expected CheckpointError";
    } catch (const CheckpointError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Checkpoint);
        EXPECT_EQ(e.object(), "checkpoint");
        EXPECT_NE(e.file(), nullptr);
        EXPECT_GT(e.line(), 0);
        // what() is the decorated form: kind, object, message, site.
        std::string what = e.what();
        EXPECT_NE(what.find("CheckpointError"), std::string::npos);
        EXPECT_NE(what.find("serialize.cc"), std::string::npos);
    }
}

TEST(TypedErrors, CheckpointReturnsStatus)
{
    const Artifacts &ref = reference(CpuModel::Atomic);
    std::string path = tmpPath("status");

    Machine m(CpuModel::Atomic);
    auto part = m.system.run(ref.finalTick / 2);
    ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
    EXPECT_TRUE(m.sim.checkpoint(path));
    EXPECT_TRUE(std::filesystem::exists(path));
    std::remove(path.c_str());
}

} // namespace
