/**
 * @file
 * Property tests over the Fig. 14 host-cache sweep: growing the L1s
 * must never slow the simulation down, every configuration keeps the
 * VIPT set count, and the guest result is unaffected by host
 * configuration (the profiler is an observer).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace g5p;
using namespace g5p::core;

namespace
{

RunResult
runOn(const host::HostPlatformConfig &platform, os::CpuModel model)
{
    RunConfig cfg;
    cfg.workload = "sieve";
    cfg.workloadScale = 0.15;
    cfg.maxGuestInsts = 6000;
    cfg.cpuModel = model;
    cfg.platform = platform;
    return runProfiledSimulation(cfg);
}

} // namespace

/** L1 size ladder, paper Fig. 14 style (64 sets kept throughout). */
class CacheSweep : public ::testing::TestWithParam<os::CpuModel>
{};

INSTANTIATE_TEST_SUITE_P(
    Models, CacheSweep,
    ::testing::Values(os::CpuModel::Atomic, os::CpuModel::Timing,
                      os::CpuModel::O3),
    [](const auto &info) { return os::cpuModelName(info.param); });

TEST_P(CacheSweep, BiggerL1NeverHurts)
{
    const unsigned ladder[][2] = {{8, 2}, {16, 4}, {32, 8}, {64, 16}};
    double prev_seconds = 0;
    std::uint64_t guest_insts = 0;
    for (const auto &[kb, assoc] : ladder) {
        auto platform =
            host::firesimCacheConfig(kb, assoc, kb, assoc, 512, 8);
        auto run = runOn(platform, GetParam());
        if (guest_insts == 0)
            guest_insts = run.guestInsts;
        // Same guest work on every host configuration.
        EXPECT_EQ(run.guestInsts, guest_insts);
        if (prev_seconds > 0) {
            EXPECT_LE(run.hostSeconds, prev_seconds * 1.02)
                << kb << "KB L1s slower than the previous step";
        }
        prev_seconds = run.hostSeconds;
    }
}

TEST_P(CacheSweep, SpeedupSaturates)
{
    // The 8->16KB step must buy more than the 32->64KB step
    // (diminishing returns, visible in the paper's Fig. 14).
    auto t8 = runOn(host::firesimCacheConfig(8, 2, 8, 2, 512, 8),
                    GetParam()).hostSeconds;
    auto t16 = runOn(host::firesimCacheConfig(16, 4, 16, 4, 512, 8),
                     GetParam()).hostSeconds;
    auto t32 = runOn(host::firesimCacheConfig(32, 8, 32, 8, 512, 8),
                     GetParam()).hostSeconds;
    auto t64 = runOn(host::firesimCacheConfig(64, 16, 64, 16, 512, 8),
                     GetParam()).hostSeconds;
    double first_step = t8 / t16;
    double last_step = t32 / t64;
    EXPECT_GT(first_step, 1.0);
    EXPECT_GT(first_step + 0.02, last_step);
}

TEST(CacheSweepInvariants, HostConfigCannotChangeGuestResult)
{
    auto a = runOn(host::firesimCacheConfig(8, 2, 8, 2, 512, 8),
                   os::CpuModel::Timing);
    auto b = runOn(host::firesimCacheConfig(64, 16, 64, 16, 2048, 16),
                   os::CpuModel::Timing);
    EXPECT_EQ(a.guestResult, b.guestResult);
    EXPECT_EQ(a.guestInsts, b.guestInsts);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.hostInsts, b.hostInsts); // same stream, other costs
}
