/**
 * @file
 * Sweep-service fast path: spec parsing/expansion, the cache key
 * contract, spool state transitions, and crash recovery on a cold
 * spool — everything that needs no simulation, so it runs in the
 * quick tier (the `quick` ctest label run_sanitize.sh smokes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/sim_error.hh"
#include "service/result_cache.hh"
#include "service/spool.hh"

using namespace g5p;
using namespace g5p::service;

namespace fs = std::filesystem;

namespace
{

/** A fresh (removed if left over) spool/cache dir for @p tag. */
std::string
freshDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "/g5p_svcq_" + tag;
    fs::remove_all(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

// ---------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------

TEST(ServiceJson, ParsesNestedDocument)
{
    JsonValue v = parseJson(R"({
        "name": "demo \"quoted\" A",
        "axes": [1, 2.5, -3e2],
        "on": true, "off": false, "nothing": null,
        "nested": {"deep": [{"x": 7}]}
    })");

    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    EXPECT_EQ(v.get("name").string, "demo \"quoted\" A");
    ASSERT_EQ(v.get("axes").array.size(), 3u);
    EXPECT_DOUBLE_EQ(v.get("axes").array[1].number, 2.5);
    EXPECT_DOUBLE_EQ(v.get("axes").array[2].number, -300.0);
    EXPECT_TRUE(v.get("on").boolean);
    EXPECT_FALSE(v.get("off").boolean);
    EXPECT_TRUE(v.get("nothing").isNull());
    EXPECT_DOUBLE_EQ(v.get("nested")
                         .get("deep")
                         .array[0]
                         .get("x")
                         .number,
                     7.0);
    EXPECT_FALSE(v.has("absent"));
    EXPECT_TRUE(v.get("absent").isNull());
}

TEST(ServiceJson, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{"), ConfigError);
    EXPECT_THROW(parseJson("{\"a\": }"), ConfigError);
    EXPECT_THROW(parseJson("[1, 2,]"), ConfigError);
    EXPECT_THROW(parseJson("\"bad \\q escape\""), ConfigError);
    EXPECT_THROW(parseJson("1 2"), ConfigError); // trailing garbage
    EXPECT_THROW(parseJson(""), ConfigError);
}

// ---------------------------------------------------------------------
// Sweep specs: schema, validation, expansion
// ---------------------------------------------------------------------

const char *fullSpec = R"({
    "name": "full",
    "workloads": ["sieve", "dedup"],
    "cpu_models": ["Atomic", "Timing"],
    "cores": [1, 2],
    "platforms": ["Intel_Xeon", "M1_Pro"],
    "l2_kb": [0, 512],
    "dram_gb_s": [0, 60.5],
    "workload_scale": 0.25,
    "max_guest_insts": 12345,
    "seed": 9,
    "resume": true,
    "priority": 3,
    "wall_cap_seconds": 1.5,
    "max_attempts": 4,
    "chaos": {"fail_first_attempts": 2}
})";

TEST(ServiceSpec, ParsesFullSchema)
{
    SweepSpec sweep = parseSweepSpec(fullSpec);
    EXPECT_EQ(sweep.name, "full");
    EXPECT_EQ(sweep.workloads,
              (std::vector<std::string>{"sieve", "dedup"}));
    EXPECT_EQ(sweep.cpuModels,
              (std::vector<std::string>{"Atomic", "Timing"}));
    EXPECT_EQ(sweep.cores, (std::vector<unsigned>{1, 2}));
    EXPECT_EQ(sweep.platforms,
              (std::vector<std::string>{"Intel_Xeon", "M1_Pro"}));
    EXPECT_EQ(sweep.l2KB, (std::vector<unsigned>{0, 512}));
    ASSERT_EQ(sweep.dramGBs.size(), 2u);
    EXPECT_DOUBLE_EQ(sweep.dramGBs[1], 60.5);
    EXPECT_DOUBLE_EQ(sweep.workloadScale, 0.25);
    EXPECT_EQ(sweep.maxGuestInsts, 12345u);
    EXPECT_EQ(sweep.seed, 9u);
    EXPECT_TRUE(sweep.resume);
    EXPECT_EQ(sweep.priority, 3);
    EXPECT_DOUBLE_EQ(sweep.wallCapSeconds, 1.5);
    EXPECT_EQ(sweep.maxAttempts, 4u);
    EXPECT_EQ(sweep.failFirstAttempts, 2u);
}

TEST(ServiceSpec, DefaultsAreMinimalSweep)
{
    SweepSpec sweep = parseSweepSpec("{}");
    std::vector<JobSpec> jobs = expandSweep(sweep);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].workload, "sieve");
    EXPECT_EQ(jobs[0].cpuModel, os::CpuModel::Atomic);
    EXPECT_EQ(jobs[0].cores, 1u);
    EXPECT_EQ(jobs[0].platform, "Intel_Xeon");
}

TEST(ServiceSpec, RejectsBadSpecs)
{
    // Unknown key: catches typos before the daemon wastes a slot.
    EXPECT_THROW(parseSweepSpec(R"({"worklods": ["sieve"]})"),
                 ConfigError);
    // Wrong type.
    EXPECT_THROW(parseSweepSpec(R"({"cores": "two"})"), ConfigError);
    // Empty axis would expand to zero jobs silently.
    EXPECT_THROW(parseSweepSpec(R"({"workloads": []})"), ConfigError);
    // Unknown CPU model / platform are rejected up front.
    EXPECT_THROW(parseSweepSpec(R"({"cpu_models": ["Quantum"]})"),
                 ConfigError);
    EXPECT_THROW(parseSweepSpec(R"({"platforms": ["Abacus"]})"),
                 ConfigError);
    EXPECT_THROW(parseSweepSpec(R"({"cores": [0]})"), ConfigError);
    EXPECT_THROW(parseSweepSpec(R"({"workload_scale": -1})"),
                 ConfigError);
}

TEST(ServiceSpec, ExpansionIsTheDeterministicCrossProduct)
{
    SweepSpec sweep = parseSweepSpec(fullSpec);
    std::vector<JobSpec> jobs = expandSweep(sweep);
    // 2 workloads x 2 models x 2 cores x 2 platforms x 2 L2 x 2 DRAM.
    ASSERT_EQ(jobs.size(), 64u);

    // Workloads are the outermost axis, DRAM bandwidth the innermost.
    EXPECT_EQ(jobs[0].workload, "sieve");
    EXPECT_EQ(jobs[63].workload, "dedup");
    EXPECT_DOUBLE_EQ(jobs[0].dramGBs, 0.0);
    EXPECT_DOUBLE_EQ(jobs[1].dramGBs, 60.5);
    EXPECT_EQ(jobs[0].l2KB, 0u);
    EXPECT_EQ(jobs[2].l2KB, 512u);

    // Shared settings reach every job.
    for (const JobSpec &job : jobs) {
        EXPECT_DOUBLE_EQ(job.workloadScale, 0.25);
        EXPECT_EQ(job.seed, 9u);
        EXPECT_TRUE(job.resume);
        EXPECT_EQ(job.priority, 3);
        EXPECT_EQ(job.failFirstAttempts, 2u);
    }

    // Every point is a distinct cache entry.
    std::vector<std::uint64_t> digests;
    for (const JobSpec &job : jobs)
        digests.push_back(jobDigest(job));
    std::sort(digests.begin(), digests.end());
    EXPECT_EQ(std::unique(digests.begin(), digests.end()),
              digests.end());
}

// ---------------------------------------------------------------------
// The cache key contract
// ---------------------------------------------------------------------

TEST(ServiceJobKey, SchedulingFieldsDoNotEnterTheKey)
{
    JobSpec a;
    JobSpec b = a;
    b.priority = 9;
    b.wallCapSeconds = 2.0;
    b.maxAttempts = 7;
    b.failFirstAttempts = 3;
    // Re-running the same experiment under a different retry policy
    // must hit the same cache entry.
    EXPECT_EQ(jobKey(a), jobKey(b));
    EXPECT_EQ(jobDigest(a), jobDigest(b));
}

TEST(ServiceJobKey, IdentityFieldsAllEnterTheKey)
{
    JobSpec base;
    auto differs = [&](auto mutate) {
        JobSpec m = base;
        mutate(m);
        return jobDigest(m) != jobDigest(base);
    };
    EXPECT_TRUE(differs([](JobSpec &j) { j.workload = "dedup"; }));
    EXPECT_TRUE(differs(
        [](JobSpec &j) { j.cpuModel = os::CpuModel::O3; }));
    EXPECT_TRUE(differs([](JobSpec &j) { j.cores = 4; }));
    EXPECT_TRUE(differs([](JobSpec &j) { j.platform = "M1_Pro"; }));
    EXPECT_TRUE(differs([](JobSpec &j) { j.l2KB = 256; }));
    EXPECT_TRUE(differs([](JobSpec &j) { j.dramGBs = 42.0; }));
    EXPECT_TRUE(differs([](JobSpec &j) { j.workloadScale = 0.5; }));
    EXPECT_TRUE(differs([](JobSpec &j) { j.maxGuestInsts = 100; }));
    EXPECT_TRUE(differs([](JobSpec &j) { j.seed = 2; }));
    EXPECT_TRUE(differs([](JobSpec &j) { j.resume = true; }));
}

TEST(ServiceSpec, ToRunConfigValidatesAndAppliesOverrides)
{
    JobSpec job;
    job.l2KB = 256;
    job.dramGBs = 50.0;
    core::RunConfig config = toRunConfig(job);
    EXPECT_EQ(config.workload, "sieve");
    EXPECT_EQ(config.platform.l2.sizeBytes, 256u * 1024u);
    EXPECT_GE(config.platform.l2.numSets(), 1u);
    EXPECT_DOUBLE_EQ(config.platform.memBwGBs, 50.0);

    JobSpec bogus;
    bogus.workload = "no-such-kernel";
    EXPECT_THROW(toRunConfig(bogus), ConfigError);
}

// ---------------------------------------------------------------------
// Spool: transitions and recovery
// ---------------------------------------------------------------------

TEST(ServiceSpool, SubmitReadMoveRoundTrip)
{
    Spool spool(freshDir("roundtrip"));

    JobSpec spec;
    spec.workload = "dedup";
    spec.cpuModel = os::CpuModel::Minor;
    spec.cores = 2;
    spec.l2KB = 512;
    spec.dramGBs = 31.5;
    spec.workloadScale = 0.5;
    spec.seed = 77;
    spec.resume = true;
    spec.priority = -2;
    spec.wallCapSeconds = 0.75;
    spec.maxAttempts = 5;
    spec.failFirstAttempts = 1;

    std::uint64_t first = spool.submit(spec);
    std::uint64_t second = spool.submit(JobSpec{});
    EXPECT_EQ(second, first + 1); // ids in submission order

    SpoolJob job = spool.read(JobState::Queued, first);
    EXPECT_EQ(job.id, first);
    EXPECT_EQ(jobKey(job.spec), jobKey(spec));
    EXPECT_EQ(job.spec.priority, -2);
    EXPECT_DOUBLE_EQ(job.spec.wallCapSeconds, 0.75);
    EXPECT_EQ(job.spec.maxAttempts, 5u);
    EXPECT_EQ(job.spec.failFirstAttempts, 1u);
    EXPECT_EQ(job.attempts, 0u);

    job.attempts = 2;
    job.lastError = "Invariant: injected";
    spool.move(job, JobState::Queued, JobState::Running);
    EXPECT_EQ(spool.count(JobState::Queued), 1u);
    EXPECT_EQ(spool.count(JobState::Running), 1u);

    SpoolJob running = spool.read(JobState::Running, first);
    EXPECT_EQ(running.attempts, 2u);
    EXPECT_EQ(running.lastError, "Invariant: injected");
    EXPECT_THROW(spool.read(JobState::Queued, first),
                 CheckpointError);

    spool.remove(JobState::Queued, second);
    EXPECT_EQ(spool.count(JobState::Queued), 0u);

    std::vector<SpoolJob> listed = spool.list(JobState::Running);
    ASSERT_EQ(listed.size(), 1u);
    EXPECT_EQ(listed[0].id, first);
}

TEST(ServiceSpool, IdsResumeAfterReopen)
{
    std::string dir = freshDir("reopen");
    std::uint64_t last = 0;
    {
        Spool spool(dir);
        spool.submit(JobSpec{});
        last = spool.submit(JobSpec{});
    }
    Spool reopened(dir);
    // A restarted daemon must never reuse a live id.
    EXPECT_GT(reopened.submit(JobSpec{}), last);
}

TEST(ServiceSpool, RecoverHealsEveryCrashArtifact)
{
    std::string dir = freshDir("recover");
    Spool spool(dir);

    // j1 was dispatched when the daemon died.
    std::uint64_t running_id = spool.submit(JobSpec{});
    SpoolJob j1 = spool.read(JobState::Queued, running_id);
    spool.move(j1, JobState::Queued, JobState::Running);

    // j2's move to done/ crashed between write and remove: the job
    // is visible in both states.
    std::uint64_t dup_id = spool.submit(JobSpec{});
    SpoolJob j2 = spool.read(JobState::Queued, dup_id);
    fs::copy_file(spool.stateDir(JobState::Queued) + "/j" +
                      std::to_string(dup_id) + ".job",
                  spool.stateDir(JobState::Done) + "/j" +
                      std::to_string(dup_id) + ".job");

    // A torn tmp file and a corrupt job file.
    spit(spool.stateDir(JobState::Queued) + "/j9.job.tmp", "torn");
    spit(spool.stateDir(JobState::Queued) + "/j8.job",
         "not a checkpoint at all");

    RecoveryReport report = spool.recover();
    EXPECT_EQ(report.requeuedRunning, 1u);
    EXPECT_EQ(report.duplicatesDropped, 1u);
    EXPECT_EQ(report.tmpFilesRemoved, 1u);
    EXPECT_EQ(report.corruptQuarantined, 1u);

    // The most advanced state wins: j2 stays done, j1 is queued
    // again, the corrupt file is quarantined out of the way.
    EXPECT_EQ(spool.count(JobState::Running), 0u);
    EXPECT_EQ(spool.count(JobState::Queued), 1u);
    EXPECT_EQ(spool.list(JobState::Queued)[0].id, running_id);
    EXPECT_EQ(spool.count(JobState::Done), 1u);
    EXPECT_EQ(spool.list(JobState::Done)[0].id, dup_id);
    EXPECT_TRUE(fs::exists(spool.stateDir(JobState::Poisoned) +
                           "/j8.job.corrupt"));
    EXPECT_FALSE(fs::exists(spool.stateDir(JobState::Queued) +
                            "/j9.job.tmp"));

    // Recovery is idempotent.
    RecoveryReport again = spool.recover();
    EXPECT_EQ(again.requeuedRunning, 0u);
    EXPECT_EQ(again.duplicatesDropped, 0u);
    EXPECT_EQ(again.corruptQuarantined, 0u);
}

// ---------------------------------------------------------------------
// Result cache basics (corruption scenarios live in test_service.cc)
// ---------------------------------------------------------------------

ServiceResult
sampleResult()
{
    ServiceResult r;
    r.workload = "sieve";
    r.platform = "Intel_Xeon";
    r.cpuModel = "Atomic";
    r.cores = 2;
    r.guestInsts = 1234567;
    r.simTicks = 7654321;
    r.guestResult = 0xdeadbeef;
    r.resultChecked = true;
    r.resultOk = true;
    r.hostSeconds = 12.34375; // exactly representable
    r.ipc = 1.5;
    r.hostInsts = 42;
    r.codeBytes = 4096;
    r.distinctFunctions = 17;
    r.countersDigest = 0x1122334455667788ull;
    return r;
}

TEST(ServiceCache, StoreThenVerifiedLookupHits)
{
    ResultCache cache(freshDir("hit"), "v1");
    JobSpec job;
    cache.store(job, sampleResult());

    ServiceResult out;
    ASSERT_TRUE(cache.lookup(job, out));
    EXPECT_EQ(out.guestInsts, 1234567u);
    EXPECT_EQ(out.guestResult, 0xdeadbeefull);
    EXPECT_TRUE(out.resultChecked);
    EXPECT_TRUE(out.resultOk);
    // Doubles survive bit-exactly (hex-float rendering).
    EXPECT_EQ(out.hostSeconds, 12.34375);
    EXPECT_EQ(out.ipc, 1.5);
    EXPECT_EQ(out.countersDigest, 0x1122334455667788ull);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
}

TEST(ServiceCache, MissOnAbsentEntry)
{
    ResultCache cache(freshDir("miss"), "v1");
    ServiceResult out;
    JobSpec job;
    EXPECT_FALSE(cache.lookup(job, out));
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ServiceCache, DigestCollisionMissesInsteadOfServingWrongResult)
{
    ResultCache cache(freshDir("collision"), "v1");
    JobSpec a;
    JobSpec b;
    b.seed = 999; // different identity, different digest
    cache.store(a, sampleResult());

    // Simulate an FNV collision: b's address holds a's entry.
    fs::copy_file(cache.entryPath(a), cache.entryPath(b));

    ServiceResult out;
    EXPECT_FALSE(cache.lookup(b, out));
    EXPECT_EQ(cache.stats().collisionMisses, 1u);
    // The full key is the authority; a's entry itself still serves.
    EXPECT_TRUE(cache.lookup(a, out));
    EXPECT_EQ(out.guestResult, 0xdeadbeefull);
}

TEST(ServiceCache, EntryBytesArePureFunctionOfKeyAndResult)
{
    std::string dir_a = freshDir("pure_a");
    std::string dir_b = freshDir("pure_b");
    JobSpec job;
    {
        ResultCache cache(dir_a, "v1");
        cache.store(job, sampleResult());
    }
    {
        ResultCache cache(dir_b, "v1");
        cache.store(job, sampleResult());
        cache.store(job, sampleResult()); // overwrite changes nothing
    }
    std::string name = fs::path(ResultCache(dir_a, "v1")
                                    .entryPath(job))
                           .filename()
                           .string();
    EXPECT_EQ(slurp(dir_a + "/" + name), slurp(dir_b + "/" + name));
}

} // namespace
