/**
 * @file
 * Tests for the m5ops-style pseudo-syscalls: resetting statistics at
 * the start of a region of interest and dumping snapshots — the
 * methodology hooks the paper's measurements rely on.
 */

#include <gtest/gtest.h>

#include "os/system.hh"

using namespace g5p;
using namespace g5p::isa;
using namespace g5p::os;

namespace
{

/** Warmup loop, resetstats, ROI loop, dumpstats, halt. */
class RoiWorkload : public GuestWorkload
{
  public:
    std::string name() const override { return "roi"; }

    void
    emit(Assembler &as, unsigned, SimMode) const override
    {
        as.label("_start");
        // Warmup: 500 iterations that must vanish from the stats.
        as.li(RegS0, 0);
        as.li(RegT3, 500);
        as.label("warm");
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "warm");

        as.li(RegA7, 1000); // ResetStats
        as.ecall();

        // ROI: exactly 100 iterations of a 2-instruction loop.
        as.li(RegS0, 0);
        as.li(RegT3, 100);
        as.label("roi");
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "roi");

        as.li(RegA7, 1001); // DumpStats
        as.ecall();
        as.mv(RegS1, RegA0); // number of dumps taken
        as.li(RegT0, (std::int64_t)resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();
    }
};

} // namespace

TEST(M5Ops, ResetStatsExcludesWarmup)
{
    RoiWorkload wl;
    sim::Simulator sim("system");
    SystemConfig cfg;
    System system(sim, cfg, wl);
    auto res = system.run();
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);

    // The final committed-inst count only covers post-reset work:
    // ROI (~200 + setup) plus the tail, not the ~1000-inst warmup.
    const auto *insts = sim.findStat("cpu0.committedInsts");
    ASSERT_NE(insts, nullptr);
    EXPECT_LT(insts->total(), 600.0);
    EXPECT_GT(insts->total(), 150.0);
}

TEST(M5Ops, DumpStatsTakesSnapshots)
{
    RoiWorkload wl;
    sim::Simulator sim("system");
    SystemConfig cfg;
    System system(sim, cfg, wl);
    system.run();

    EXPECT_EQ(system.result(), 1u); // one dump taken
    const auto &dumps = system.process().emulator().statsDumps();
    ASSERT_EQ(dumps.size(), 1u);
    // The snapshot is a stats.txt-format dump of the whole tree.
    EXPECT_NE(dumps[0].find("cpu0.committedInsts"),
              std::string::npos);
    EXPECT_NE(dumps[0].find("cpu0.icache.hits"), std::string::npos);
}

TEST(M5Ops, WorkOnAllCpuModels)
{
    for (CpuModel model : allCpuModels) {
        RoiWorkload wl;
        sim::Simulator sim("system");
        SystemConfig cfg;
        cfg.cpuModel = model;
        System system(sim, cfg, wl);
        auto res = system.run(5'000'000'000ULL);
        EXPECT_EQ(res.cause, sim::ExitCause::Finished)
            << cpuModelName(model);
        EXPECT_EQ(system.result(), 1u) << cpuModelName(model);
    }
}
