/**
 * @file
 * Golden-run regression harness: each CPU model runs a fixed workload
 * and the complete stats dump is reduced to an FNV-1a digest over the
 * sorted (name, value) pairs. The digest is compared against a
 * checked-in fixture in tests/golden/; any drift — a changed counter,
 * a renamed stat, a perturbed timing model — fails the test with a
 * line-level diff against the fixture.
 *
 * Intentional changes are blessed by re-running with --update-golden,
 * which rewrites the fixtures in the source tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "os/system.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::isa;
using namespace g5p::os;

namespace
{

bool updateGolden = false;

class GoldenWorkload : public GuestWorkload
{
  public:
    std::string name() const override { return "golden"; }

    void
    emit(Assembler &as, unsigned num_cpus, SimMode mode) const override
    {
        // A mix of ALU ops, strided stores, dependent loads, and a
        // data-dependent branch: enough to give every stat in the
        // machine a nonzero, model-specific value.
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 1200);
        as.li(RegT2, 0x400000);
        as.label("loop");
        as.mul(RegT0, RegS0, RegS0);
        as.andi(RegT1, RegS0, 255);
        as.slli(RegT1, RegT1, 3);
        as.add(RegT1, RegT1, RegT2);
        as.sd(RegT0, RegT1, 0);
        as.ld(RegT0, RegT1, 0);
        as.andi(RegT4, RegS0, 3);
        as.bne(RegT4, RegZero, "skip");
        as.add(RegS1, RegS1, RegT0);
        as.label("skip");
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        as.li(RegT0, (std::int64_t)resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();
    }
};

/**
 * Sorted "name value" pairs straight off the stats visitor — the
 * same reduction the text dump used to be re-parsed into (default
 * ostream double formatting keeps the digests fixture-compatible).
 */
class LineVisitor : public sim::stats::Visitor
{
  public:
    void
    value(const std::string &dotted, double value,
          const sim::stats::Info &) override
    {
        std::ostringstream os;
        os << dotted << " " << value;
        lines.push_back(os.str());
    }

    std::vector<std::string> lines;
};

std::vector<std::string>
statLines(const sim::stats::Group &root)
{
    LineVisitor v;
    root.visit(v);
    std::sort(v.lines.begin(), v.lines.end());
    return v.lines;
}

std::uint64_t
fnv1a(const std::vector<std::string> &lines)
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (const std::string &line : lines) {
        for (unsigned char c : line)
            hash = (hash ^ c) * 1099511628211ULL;
        hash = (hash ^ (unsigned char)'\n') * 1099511628211ULL;
    }
    return hash;
}

std::string
goldenPath(CpuModel model)
{
    return std::string(G5P_GOLDEN_DIR) + "/" + cpuModelName(model) +
           ".txt";
}

void
writeFixture(const std::string &path, std::uint64_t digest,
             const std::vector<std::string> &lines)
{
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write fixture " << path;
    os << "digest " << std::hex << digest << std::dec << "\n";
    for (const auto &line : lines)
        os << line << "\n";
}

struct Fixture
{
    bool present = false;
    std::uint64_t digest = 0;
    std::vector<std::string> lines;
};

Fixture
readFixture(const std::string &path)
{
    Fixture fx;
    std::ifstream is(path);
    if (!is.good())
        return fx;
    std::string word;
    is >> word >> std::hex >> fx.digest >> std::dec;
    if (word != "digest") {
        ADD_FAILURE() << "malformed fixture " << path;
        return fx;
    }
    std::string line;
    std::getline(is, line); // rest of the digest line
    while (std::getline(is, line))
        if (!line.empty())
            fx.lines.push_back(line);
    fx.present = true;
    return fx;
}

/** First few fixture-vs-run line differences, for the failure text. */
std::string
diffLines(const std::vector<std::string> &want,
          const std::vector<std::string> &got)
{
    std::ostringstream os;
    int shown = 0;
    std::size_t i = 0, j = 0;
    while ((i < want.size() || j < got.size()) && shown < 12) {
        if (i < want.size() && j < got.size() &&
            want[i] == got[j]) {
            ++i, ++j;
        } else if (j >= got.size() ||
                   (i < want.size() && want[i] < got[j])) {
            os << "  - " << want[i++] << "\n";
            ++shown;
        } else {
            os << "  + " << got[j++] << "\n";
            ++shown;
        }
    }
    if (i < want.size() || j < got.size())
        os << "  ... (more differences)\n";
    return os.str();
}

class GoldenRun : public ::testing::TestWithParam<CpuModel>
{};

TEST_P(GoldenRun, StatsDigestMatchesFixture)
{
    CpuModel model = GetParam();
    GoldenWorkload wl;

    sim::Simulator sim("system");
    SystemConfig cfg;
    cfg.cpuModel = model;
    System system(sim, cfg, wl);
    auto res = system.run(5'000'000'000'000ULL);
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);

    std::vector<std::string> lines = statLines(sim);
    std::uint64_t digest = fnv1a(lines);
    std::string path = goldenPath(model);

    if (updateGolden) {
        writeFixture(path, digest, lines);
        std::printf("updated %s\n", path.c_str());
        return;
    }

    Fixture fx = readFixture(path);
    ASSERT_TRUE(fx.present)
        << "no golden fixture at " << path
        << "; run test_golden --update-golden to create it";
    EXPECT_EQ(fx.digest, digest)
        << "stats drifted from golden run for " << cpuModelName(model)
        << "; if intentional, bless with --update-golden.\n"
        << "Line diff (- fixture, + this run):\n"
        << diffLines(fx.lines, lines);
}

INSTANTIATE_TEST_SUITE_P(
    Models, GoldenRun, ::testing::ValuesIn(allCpuModels),
    [](const auto &info) {
        return std::string(cpuModelName(info.param));
    });

TEST(GoldenWorkloads, WaterNsquaredLongDigestMatchesFixture)
{
    // The long-horizon sampling guest: pin its Atomic-run stats (at a
    // CI-sized scale) and its checksum so the variant can't silently
    // drift apart from plain water_nsquared.
    auto wl = workloads::Registry::instance().create(
        "water_nsquared_long", 0.25);

    sim::Simulator sim("system");
    SystemConfig cfg;
    System system(sim, cfg, *wl);
    auto res = system.run(5'000'000'000'000ULL);
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);
    EXPECT_EQ(system.result(), wl->expectedResult(1));

    std::vector<std::string> lines = statLines(sim);
    std::uint64_t digest = fnv1a(lines);
    std::string path =
        std::string(G5P_GOLDEN_DIR) + "/water_nsquared_long.txt";

    if (updateGolden) {
        writeFixture(path, digest, lines);
        std::printf("updated %s\n", path.c_str());
        return;
    }

    Fixture fx = readFixture(path);
    ASSERT_TRUE(fx.present)
        << "no golden fixture at " << path
        << "; run test_golden --update-golden to create it";
    EXPECT_EQ(fx.digest, digest)
        << "stats drifted from golden run for water_nsquared_long"
        << "; if intentional, bless with --update-golden.\n"
        << "Line diff (- fixture, + this run):\n"
        << diffLines(fx.lines, lines);
}

TEST(GoldenWorkloads, RadixThreadsTwoCoreDigestMatchesFixture)
{
    // The coherent multi-core path: a 2-core Timing run of the
    // threaded radix kernel pins every coherence-facing stat (cache
    // invalidations, xbar snoop counts, per-core commit counts) so
    // protocol changes can't drift silently.
    auto wl = workloads::Registry::instance().create("radix_threads",
                                                     0.25);

    sim::Simulator sim("system");
    SystemConfig cfg;
    cfg.cpuModel = CpuModel::Timing;
    cfg.numCpus = 2;
    System system(sim, cfg, *wl);
    auto res = system.run(5'000'000'000'000ULL);
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);
    EXPECT_EQ(system.result(), wl->expectedResult(2));

    std::vector<std::string> lines = statLines(sim);
    std::uint64_t digest = fnv1a(lines);
    std::string path =
        std::string(G5P_GOLDEN_DIR) + "/radix_threads_2core.txt";

    if (updateGolden) {
        writeFixture(path, digest, lines);
        std::printf("updated %s\n", path.c_str());
        return;
    }

    Fixture fx = readFixture(path);
    ASSERT_TRUE(fx.present)
        << "no golden fixture at " << path
        << "; run test_golden --update-golden to create it";
    EXPECT_EQ(fx.digest, digest)
        << "stats drifted from golden run for radix_threads (2-core)"
        << "; if intentional, bless with --update-golden.\n"
        << "Line diff (- fixture, + this run):\n"
        << diffLines(fx.lines, lines);
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flag before gtest parses the rest.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden") {
            updateGolden = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
