/**
 * @file
 * Unit and property tests for the MRV guest ISA: encode/decode round
 * trips across every opcode, flag classification, execution semantics
 * against a scratch context, and the assembler's label resolution and
 * 64-bit constant synthesis.
 */

#include <gtest/gtest.h>

#include <bit>
#include <map>

#include "isa/assembler.hh"
#include "isa/decoder.hh"
#include "isa/inst.hh"

using namespace g5p;
using namespace g5p::isa;

namespace
{

/** Minimal ExecContext over plain arrays for semantic tests. */
class ScratchContext : public ExecContext
{
  public:
    std::uint64_t regs[numArchRegs] = {};
    std::map<Addr, std::uint64_t> memory;
    Addr curPc = 0x1000;
    Addr npc = 0;
    std::uint64_t lastLoad = 0;

    std::uint64_t
    readReg(RegIndex reg) const override
    {
        return reg == 0 ? 0 : regs[reg];
    }

    void
    setReg(RegIndex reg, std::uint64_t value) override
    {
        if (reg)
            regs[reg] = value;
    }

    Addr pc() const override { return curPc; }
    void setNextPc(Addr v) override { npc = v; }

    Fault
    readMem(Addr addr, unsigned size) override
    {
        auto it = memory.find(addr);
        lastLoad = it == memory.end() ? 0 : it->second;
        if (size < 8)
            lastLoad &= (1ULL << (size * 8)) - 1;
        return Fault::None;
    }

    Fault
    writeMem(Addr addr, unsigned size, std::uint64_t data) override
    {
        memory[addr] = data;
        return Fault::None;
    }

    std::uint64_t memData() const override { return lastLoad; }
};

} // namespace

/** Round-trip every opcode through encode + decode. */
class OpcodeRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(OpcodeRoundTrip, FieldsSurvive)
{
    auto op = (Opcode)GetParam();
    std::uint64_t word = encode(op, 5, 6, 7, -12345);
    StaticInstPtr inst = Decoder::decodeOne(word);
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(inst->opcode(), op);
    EXPECT_EQ(inst->rd(), 5);
    EXPECT_EQ(inst->rs1(), 6);
    EXPECT_EQ(inst->rs2(), 7);
    EXPECT_EQ(inst->imm(), -12345);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range(0, (int)Opcode::NumOpcodes));

TEST(IsaFlags, Classification)
{
    auto flags = [](Opcode op) {
        return Decoder::decodeOne(encode(op, 1, 2, 3, 0))->flags();
    };
    EXPECT_TRUE(flags(Opcode::Ld).isLoad);
    EXPECT_TRUE(flags(Opcode::Ld).isMemRef);
    EXPECT_TRUE(flags(Opcode::Sd).isStore);
    EXPECT_FALSE(flags(Opcode::Sd).isLoad);
    EXPECT_TRUE(flags(Opcode::Beq).isCondCtrl);
    EXPECT_TRUE(flags(Opcode::Jal).isControl);
    EXPECT_FALSE(flags(Opcode::Jal).isIndirect);
    EXPECT_TRUE(flags(Opcode::Jalr).isIndirect);
    EXPECT_TRUE(flags(Opcode::Mul).isMul);
    EXPECT_TRUE(flags(Opcode::Div).isDiv);
    EXPECT_TRUE(flags(Opcode::Fadd).isFloat);
    EXPECT_TRUE(flags(Opcode::Fdiv).isDiv);
    EXPECT_TRUE(flags(Opcode::Ecall).isSyscall);
    EXPECT_TRUE(flags(Opcode::Halt).isHalt);
    EXPECT_TRUE(flags(Opcode::Nop).isNop);
}

TEST(IsaFlags, CallDetection)
{
    auto jal_ra = Decoder::decodeOne(encode(Opcode::Jal, RegRa, 0, 0,
                                            64));
    EXPECT_TRUE(jal_ra->flags().isCall);
    auto jal_x0 = Decoder::decodeOne(encode(Opcode::Jal, RegZero, 0,
                                            0, 64));
    EXPECT_FALSE(jal_x0->flags().isCall);
}

TEST(IsaExec, IntegerAlu)
{
    ScratchContext ctx;
    ctx.regs[2] = 20;
    ctx.regs[3] = 7;
    auto run = [&](Opcode op, std::int32_t imm = 0) {
        auto inst = Decoder::decodeOne(encode(op, 1, 2, 3, imm));
        EXPECT_EQ(inst->execute(ctx), Fault::None);
        return ctx.regs[1];
    };
    EXPECT_EQ(run(Opcode::Add), 27u);
    EXPECT_EQ(run(Opcode::Sub), 13u);
    EXPECT_EQ(run(Opcode::And), 4u);
    EXPECT_EQ(run(Opcode::Or), 23u);
    EXPECT_EQ(run(Opcode::Xor), 19u);
    EXPECT_EQ(run(Opcode::Slt), 0u);
    EXPECT_EQ(run(Opcode::Addi, -5), 15u);
    EXPECT_EQ(run(Opcode::Slli, 3), 160u);
    EXPECT_EQ(run(Opcode::Mul), 140u);
    EXPECT_EQ(run(Opcode::Div), 2u);
    EXPECT_EQ(run(Opcode::Rem), 6u);
}

TEST(IsaExec, SignedArithmetic)
{
    ScratchContext ctx;
    ctx.regs[2] = (std::uint64_t)-40;
    ctx.regs[3] = 7;
    auto inst = Decoder::decodeOne(encode(Opcode::Div, 1, 2, 3, 0));
    inst->execute(ctx);
    EXPECT_EQ((std::int64_t)ctx.regs[1], -5);

    inst = Decoder::decodeOne(encode(Opcode::Sra, 1, 2, 3, 0));
    ctx.regs[3] = 2;
    inst->execute(ctx);
    EXPECT_EQ((std::int64_t)ctx.regs[1], -10);

    // Division by zero follows the RISC-V convention.
    ctx.regs[3] = 0;
    inst = Decoder::decodeOne(encode(Opcode::Div, 1, 2, 3, 0));
    inst->execute(ctx);
    EXPECT_EQ(ctx.regs[1], ~0ULL);
}

TEST(IsaExec, FloatingPoint)
{
    ScratchContext ctx;
    ctx.regs[2] = std::bit_cast<std::uint64_t>(1.5);
    ctx.regs[3] = std::bit_cast<std::uint64_t>(2.0);
    auto run = [&](Opcode op) {
        Decoder::decodeOne(encode(op, 1, 2, 3, 0))->execute(ctx);
        return std::bit_cast<double>(ctx.regs[1]);
    };
    EXPECT_DOUBLE_EQ(run(Opcode::Fadd), 3.5);
    EXPECT_DOUBLE_EQ(run(Opcode::Fsub), -0.5);
    EXPECT_DOUBLE_EQ(run(Opcode::Fmul), 3.0);
    EXPECT_DOUBLE_EQ(run(Opcode::Fdiv), 0.75);
}

TEST(IsaExec, LoadsSignExtend)
{
    ScratchContext ctx;
    ctx.regs[2] = 0x100;
    ctx.memory[0x100] = 0xff; // -1 as a byte

    auto lb = Decoder::decodeOne(encode(Opcode::Lb, 1, 2, 0, 0));
    EXPECT_EQ(lb->execute(ctx), Fault::None);
    lb->completeAcc(ctx, ctx.memData());
    EXPECT_EQ((std::int64_t)ctx.regs[1], -1);

    auto lbu = Decoder::decodeOne(encode(Opcode::Lbu, 1, 2, 0, 0));
    lbu->execute(ctx);
    lbu->completeAcc(ctx, ctx.memData());
    EXPECT_EQ(ctx.regs[1], 0xffu);
}

TEST(IsaExec, StoreWritesNarrow)
{
    ScratchContext ctx;
    ctx.regs[2] = 0x200;
    ctx.regs[3] = 0x1234567890abcdefULL;
    auto sw = Decoder::decodeOne(encode(Opcode::Sw, 0, 2, 3, 8));
    EXPECT_EQ(sw->execute(ctx), Fault::None);
    EXPECT_EQ(ctx.memory[0x208], 0x90abcdefu);
}

TEST(IsaExec, BranchesAndJumps)
{
    ScratchContext ctx;
    ctx.curPc = 0x1000;
    ctx.regs[2] = 5;
    ctx.regs[3] = 5;

    auto beq = Decoder::decodeOne(encode(Opcode::Beq, 0, 2, 3, 80));
    ctx.npc = 0;
    beq->execute(ctx);
    EXPECT_EQ(ctx.npc, 0x1050u);

    ctx.regs[3] = 6;
    ctx.npc = 0;
    beq->execute(ctx);
    EXPECT_EQ(ctx.npc, 0u); // not taken: nextPc untouched

    auto jal = Decoder::decodeOne(encode(Opcode::Jal, RegRa, 0, 0,
                                         -16));
    jal->execute(ctx);
    EXPECT_EQ(ctx.npc, 0x0ff0u);
    EXPECT_EQ(ctx.regs[RegRa], 0x1008u);

    ctx.regs[5] = 0x2004; // unaligned target is rounded down
    auto jalr = Decoder::decodeOne(encode(Opcode::Jalr, 1, 5, 0, 4));
    jalr->execute(ctx);
    EXPECT_EQ(ctx.npc, 0x2008u);
}

TEST(IsaExec, SystemFaults)
{
    ScratchContext ctx;
    EXPECT_EQ(Decoder::decodeOne(encode(Opcode::Ecall, 0, 0, 0, 0))
                  ->execute(ctx),
              Fault::Syscall);
    EXPECT_EQ(Decoder::decodeOne(encode(Opcode::Halt, 0, 0, 0, 0))
                  ->execute(ctx),
              Fault::Halt);
    EXPECT_EQ(Decoder::decodeOne(encode(Opcode::Nop, 0, 0, 0, 0))
                  ->execute(ctx),
              Fault::None);
}

TEST(Decoder, CacheSharesInstances)
{
    Decoder decoder;
    std::uint64_t word = encode(Opcode::Add, 1, 2, 3, 0);
    auto a = decoder.decode(word);
    auto b = decoder.decode(word);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(decoder.cacheSize(), 1u);
    EXPECT_EQ(decoder.numDecodes(), 2u);
    EXPECT_EQ(decoder.numCacheHits(), 1u);
}

TEST(Disassemble, Readable)
{
    auto dis = [](std::uint64_t word) {
        return Decoder::decodeOne(word)->disassemble();
    };
    EXPECT_EQ(dis(encode(Opcode::Add, 1, 2, 3, 0)), "add x1, x2, x3");
    EXPECT_EQ(dis(encode(Opcode::Addi, 1, 2, 0, -5)),
              "addi x1, x2, -5");
    EXPECT_EQ(dis(encode(Opcode::Ld, 1, 2, 0, 16)), "ld x1, 16(x2)");
    EXPECT_EQ(dis(encode(Opcode::Beq, 0, 1, 2, 8)),
              "beq x1, x2, 8");
    EXPECT_EQ(dis(encode(Opcode::Halt, 0, 0, 0, 0)), "halt");
}

// ---------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------

TEST(Assembler, ForwardAndBackwardLabels)
{
    Assembler as(0x1000);
    as.label("top");
    as.addi(5, 5, 1);
    as.beq(5, 6, "done");   // forward
    as.j("top");            // backward
    as.label("done");
    as.halt();
    Program prog = as.assemble();

    ASSERT_EQ(prog.words.size(), 4u);
    auto beq = Decoder::decodeOne(prog.words[1]);
    // beq at 0x1008, done at 0x1018 -> offset +16
    EXPECT_EQ(beq->imm(), 16);
    auto j = Decoder::decodeOne(prog.words[2]);
    // j at 0x1010, top at 0x1000 -> offset -16
    EXPECT_EQ(j->imm(), -16);
    EXPECT_EQ(prog.symbol("top"), 0x1000u);
    EXPECT_EQ(prog.symbol("done"), 0x1018u);
}

/** li must synthesize any 64-bit constant exactly. */
class LiConstants : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(LiConstants, SynthesizesExactValue)
{
    std::int64_t value = GetParam();
    Assembler as(0x1000);
    as.li(9, value);
    as.halt();
    Program prog = as.assemble();

    ScratchContext ctx;
    Addr pc = prog.base;
    for (std::uint64_t word : prog.words) {
        auto inst = Decoder::decodeOne(word);
        if (inst->flags().isHalt)
            break;
        ctx.curPc = pc;
        inst->execute(ctx);
        pc += instBytes;
    }
    EXPECT_EQ(ctx.regs[9], (std::uint64_t)value)
        << "li " << value << " produced " << ctx.regs[9];
}

INSTANTIATE_TEST_SUITE_P(
    Values, LiConstants,
    ::testing::Values(0, 1, -1, 42, -12345, 0x3fff, 0x4000,
                      INT32_MAX, INT32_MIN, (std::int64_t)1 << 33,
                      (std::int64_t)25214903917LL,
                      (std::int64_t)0x46293e5939a08ceaLL,
                      INT64_MAX, INT64_MIN + 1,
                      (std::int64_t)0x8000000000000001ULL));

TEST(Assembler, HereTracksPosition)
{
    Assembler as(0x1000);
    EXPECT_EQ(as.here(), 0x1000u);
    as.nop();
    EXPECT_EQ(as.here(), 0x1008u);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(AssemblerDeath, UndefinedLabelIsFatal)
{
    Assembler as(0x1000);
    as.j("nowhere");
    EXPECT_EXIT(as.assemble(), ::testing::ExitedWithCode(1),
                "undefined label");
}

TEST(AssemblerDeath, DuplicateLabelPanics)
{
    Assembler as(0x1000);
    as.label("x");
    EXPECT_DEATH(as.label("x"), "duplicate label");
}
#endif
