/**
 * @file
 * Direct unit tests for the O3 pipeline components: reorder buffer,
 * rename map, issue queue (operand readiness + FU pool), and the
 * load/store queue's forwarding and squashing.
 */

#include <gtest/gtest.h>

#include "cpu/o3/iq.hh"
#include "cpu/o3/lsq.hh"
#include "cpu/o3/rename.hh"
#include "cpu/o3/rob.hh"
#include "isa/decoder.hh"

using namespace g5p;
using namespace g5p::cpu::o3;
using namespace g5p::isa;

namespace
{

DynInstPtr
makeInst(Opcode op, std::uint64_t seq, RegIndex rd = 1,
         RegIndex rs1 = 2, RegIndex rs2 = 3)
{
    auto di = std::make_shared<DynInst>();
    di->inst = Decoder::decodeOne(encode(op, rd, rs1, rs2, 0));
    di->seq = seq;
    di->pc = 0x1000 + seq * instBytes;
    return di;
}

} // namespace

TEST(Rob, FifoOrderAndCapacity)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    for (std::uint64_t s = 1; s <= 4; ++s)
        rob.push(makeInst(Opcode::Add, s));
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head()->seq, 1u);
    rob.popHead();
    EXPECT_EQ(rob.head()->seq, 2u);
    EXPECT_FALSE(rob.full());
    EXPECT_EQ(rob.size(), 3u);
}

TEST(Rob, SquashRemovesYoungerWrongPath)
{
    Rob rob(16);
    rob.push(makeInst(Opcode::Add, 1));
    rob.push(makeInst(Opcode::Beq, 2));
    for (std::uint64_t s = 3; s <= 6; ++s) {
        auto wp = makeInst(Opcode::Add, s);
        wp->wrongPath = true;
        rob.push(wp);
    }
    EXPECT_EQ(rob.squashAfter(2), 4u);
    EXPECT_EQ(rob.size(), 2u);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(RobDeath, SquashingRightPathPanics)
{
    Rob rob(16);
    rob.push(makeInst(Opcode::Add, 1));
    rob.push(makeInst(Opcode::Add, 2)); // right path!
    EXPECT_DEATH(rob.squashAfter(1), "right-path");
}
#endif

TEST(RenameMap, AllocatesAndRecyclesPhysRegs)
{
    RenameMap map(40); // 32 arch + 8 spare
    EXPECT_EQ(map.freeCount(), 8u);

    int before = map.lookup(5);
    auto [next, prev] = map.rename(5);
    EXPECT_EQ(prev, before);
    EXPECT_NE(next, before);
    EXPECT_EQ(map.lookup(5), next);
    EXPECT_EQ(map.freeCount(), 7u);

    map.free(prev); // commit frees the previous mapping
    EXPECT_EQ(map.freeCount(), 8u);
}

TEST(RenameMap, ExhaustionIsDetectable)
{
    RenameMap map(34);
    EXPECT_TRUE(map.canRename());
    map.rename(1);
    map.rename(2);
    EXPECT_FALSE(map.canRename());
}

TEST(RenameMap, ReadyCycleTracking)
{
    RenameMap map(40);
    auto [phys, prev] = map.rename(7);
    map.setReadyCycle(phys, 100);
    EXPECT_EQ(map.readyCycle(phys), 100u);
}

TEST(IssueQueue, IssuesOnlyReadyInstructions)
{
    RenameMap rename(64);
    FuPoolParams fu;
    IssueQueue iq(8, fu);

    // Producer writes p; consumer reads it.
    auto producer = makeInst(Opcode::Add, 1, 5, 2, 3);
    auto [p, _] = rename.rename(5);
    producer->destPhys = p;
    producer->srcPhys1 = -1;
    producer->srcPhys2 = -1;
    rename.setReadyCycle(p, 10); // ready at cycle 10

    auto consumer = makeInst(Opcode::Add, 2, 6, 5, 0);
    consumer->srcPhys1 = p;
    consumer->srcPhys2 = -1;

    iq.insert(producer);
    iq.insert(consumer);

    std::vector<std::uint64_t> issued;
    auto grab = [&](const DynInstPtr &di, Cycles) {
        issued.push_back(di->seq);
    };

    // At cycle 5 the consumer's source is not ready.
    iq.issue(5, 4, rename, grab);
    EXPECT_EQ(issued, (std::vector<std::uint64_t>{1}));

    // At cycle 10 it is.
    iq.issue(10, 4, rename, grab);
    EXPECT_EQ(issued, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(iq.size(), 0u);
}

TEST(IssueQueue, RespectsIssueWidthAndFuPool)
{
    RenameMap rename(64);
    FuPoolParams fu;
    fu.mulDiv = 1;
    IssueQueue iq(16, fu);

    // Three ready multiplies but only one multiplier.
    for (std::uint64_t s = 1; s <= 3; ++s) {
        auto di = makeInst(Opcode::Mul, s);
        di->srcPhys1 = -1;
        di->srcPhys2 = -1;
        iq.insert(di);
    }
    unsigned issued = iq.issue(0, 8, rename,
                               [](const DynInstPtr &, Cycles) {});
    EXPECT_EQ(issued, 1u);

    // Plenty of ALUs, but width caps total issue.
    for (std::uint64_t s = 10; s < 20; ++s) {
        auto di = makeInst(Opcode::Add, s);
        di->srcPhys1 = -1;
        di->srcPhys2 = -1;
        iq.insert(di);
    }
    issued = iq.issue(1, 2, rename,
                      [](const DynInstPtr &, Cycles) {});
    EXPECT_EQ(issued, 2u);
}

TEST(IssueQueue, FuLatenciesDifferByClass)
{
    RenameMap rename(64);
    FuPoolParams fu;
    IssueQueue iq(8, fu);

    auto add = makeInst(Opcode::Add, 1);
    add->srcPhys1 = add->srcPhys2 = -1;
    auto div = makeInst(Opcode::Div, 2);
    div->srcPhys1 = div->srcPhys2 = -1;
    auto fdiv = makeInst(Opcode::Fdiv, 3);
    fdiv->srcPhys1 = fdiv->srcPhys2 = -1;

    iq.insert(add);
    iq.insert(div);
    iq.insert(fdiv);

    std::map<std::uint64_t, Cycles> latency;
    iq.issue(0, 8, rename, [&](const DynInstPtr &di, Cycles lat) {
        latency[di->seq] = lat;
    });
    EXPECT_EQ(latency[1], fu.intLatency);
    EXPECT_EQ(latency[2], fu.divLatency);
    EXPECT_EQ(latency[3], fu.fpDivLatency);
}

TEST(IssueQueue, SquashDropsYounger)
{
    RenameMap rename(64);
    IssueQueue iq(8, FuPoolParams{});
    for (std::uint64_t s = 1; s <= 5; ++s)
        iq.insert(makeInst(Opcode::Add, s));
    iq.squashAfter(2);
    EXPECT_EQ(iq.size(), 2u);
}

TEST(Lsq, ForwardingRequiresOlderCoveringStore)
{
    Lsq lsq(8, 8);

    auto store = makeInst(Opcode::Sd, 1);
    store->paddr = 0x1000;
    store->memSize = 8;
    lsq.insertStore(store);

    auto load = makeInst(Opcode::Ld, 2);
    load->paddr = 0x1000;
    load->memSize = 8;
    lsq.insertLoad(load);
    EXPECT_TRUE(lsq.canForward(*load));

    // Different address: no forwarding.
    load->paddr = 0x2000;
    EXPECT_FALSE(lsq.canForward(*load));

    // A younger store cannot forward to an older load.
    auto old_load = makeInst(Opcode::Ld, 0);
    old_load->paddr = 0x1000;
    old_load->memSize = 8;
    EXPECT_FALSE(lsq.canForward(*old_load));

    // A narrower store cannot cover a wider load.
    load->paddr = 0x1000;
    store->memSize = 4;
    EXPECT_FALSE(lsq.canForward(*load));
}

TEST(Lsq, CapacityAndCommit)
{
    Lsq lsq(2, 2);
    auto l1 = makeInst(Opcode::Ld, 1);
    auto l2 = makeInst(Opcode::Ld, 2);
    lsq.insertLoad(l1);
    lsq.insertLoad(l2);
    EXPECT_TRUE(lsq.lqFull());
    lsq.commit(*l1);
    EXPECT_FALSE(lsq.lqFull());
    EXPECT_EQ(lsq.numLoads(), 1u);
}

TEST(Lsq, SquashAfterDropsWrongPathTail)
{
    Lsq lsq(8, 8);
    for (std::uint64_t s = 1; s <= 4; ++s) {
        lsq.insertLoad(makeInst(Opcode::Ld, s));
        lsq.insertStore(makeInst(Opcode::Sd, s + 10));
    }
    lsq.squashAfter(2);
    EXPECT_EQ(lsq.numLoads(), 2u);
    EXPECT_EQ(lsq.numStores(), 0u); // all stores were seq > 2
}
