/**
 * @file
 * Cross-model CPU tests: every CPU model must produce identical
 * architectural results on the same programs, differing only in
 * timing. Uses the System factory with a custom inline workload.
 */

#include <gtest/gtest.h>

#include <functional>

#include "os/system.hh"

using namespace g5p;
using namespace g5p::isa;
using namespace g5p::os;

namespace
{

/** Workload built from a lambda, for ad-hoc guest programs. */
class InlineWorkload : public GuestWorkload
{
  public:
    using EmitFn = std::function<void(Assembler &, unsigned)>;

    InlineWorkload(std::string name, EmitFn emit)
        : name_(std::move(name)), emit_(std::move(emit))
    {}

    std::string name() const override { return name_; }

    void
    emit(Assembler &as, unsigned num_cpus, SimMode mode) const override
    {
        emit_(as, num_cpus);
    }

  private:
    std::string name_;
    EmitFn emit_;
};

/** Run @p wl on one CPU of @p model; return (result, ticks, insts). */
struct RunOutput
{
    std::uint64_t result;
    Tick ticks;
    std::uint64_t insts;
    std::string console;
};

RunOutput
runOn(CpuModel model, const GuestWorkload &wl, unsigned cpus = 1,
      SimMode mode = SimMode::SE)
{
    sim::Simulator sim("system");
    SystemConfig cfg;
    cfg.cpuModel = model;
    cfg.mode = mode;
    cfg.numCpus = cpus;
    System system(sim, cfg, wl);
    auto res = system.run(5'000'000'000'000ULL);
    EXPECT_EQ(res.cause, sim::ExitCause::Finished)
        << "on " << cpuModelName(model);
    return RunOutput{system.result(), res.tick, system.totalInsts(),
                     system.process().emulator().consoleOutput()};
}

/** Store s1 to the result slot and halt (single CPU programs). */
void
emitFinish(Assembler &as)
{
    as.li(RegT0, (std::int64_t)GuestWorkload::resultAddr);
    as.sd(RegS1, RegT0, 0);
    as.halt();
}

} // namespace

class AllCpuModels : public ::testing::TestWithParam<CpuModel>
{};

INSTANTIATE_TEST_SUITE_P(
    Models, AllCpuModels,
    ::testing::Values(CpuModel::Atomic, CpuModel::Timing,
                      CpuModel::Minor, CpuModel::O3),
    [](const auto &info) { return cpuModelName(info.param); });

TEST_P(AllCpuModels, ArithmeticChain)
{
    InlineWorkload wl("arith", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 10);
        as.li(RegT1, 3);
        as.mul(RegS1, RegS1, RegT1);  // 30
        as.addi(RegS1, RegS1, -5);    // 25
        as.slli(RegS1, RegS1, 2);     // 100
        as.li(RegT1, 7);
        as.rem(RegT1, RegS1, RegT1);  // 2
        as.add(RegS1, RegS1, RegT1);  // 102
        emitFinish(as);
    });
    EXPECT_EQ(runOn(GetParam(), wl).result, 102u);
}

TEST_P(AllCpuModels, LoopSum)
{
    InlineWorkload wl("loop", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 1);
        as.li(RegT1, 101);
        as.label("loop");
        as.add(RegS1, RegS1, RegS0);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT1, "loop");
        emitFinish(as);
    });
    EXPECT_EQ(runOn(GetParam(), wl).result, 5050u);
}

TEST_P(AllCpuModels, MemoryDependencies)
{
    // Store/load chains through memory, including byte granularity
    // and store-to-load forwarding distance of 1 instruction.
    InlineWorkload wl("memdep", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegT0, 0x200000);
        as.li(RegT1, 0x1234);
        as.sd(RegT1, RegT0, 0);
        as.ld(RegT2, RegT0, 0);       // immediate reuse
        as.addi(RegT2, RegT2, 1);
        as.sd(RegT2, RegT0, 8);
        as.ld(RegS1, RegT0, 8);       // 0x1235
        as.sb(RegS1, RegT0, 16);
        as.lb(RegT1, RegT0, 16);      // 0x35
        as.add(RegS1, RegS1, RegT1);  // 0x126a
        emitFinish(as);
    });
    EXPECT_EQ(runOn(GetParam(), wl).result, 0x126au);
}

TEST_P(AllCpuModels, FunctionCallsAndReturns)
{
    InlineWorkload wl("calls", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.label("again");
        as.call("double_it");
        as.addi(RegS0, RegS0, 1);
        as.li(RegT1, 5);
        as.blt(RegS0, RegT1, "again");
        as.j("fin");
        as.label("double_it");
        as.slli(RegS1, RegS1, 1);
        as.addi(RegS1, RegS1, 1);
        as.ret();
        as.label("fin");
        emitFinish(as);
    });
    // s1 = 2*s1+1 five times from 0 -> 31
    EXPECT_EQ(runOn(GetParam(), wl).result, 31u);
}

TEST_P(AllCpuModels, MispredictRecovery)
{
    // A data-dependent branch pattern that defeats simple predictors
    // — correctness must be unaffected by squashing.
    InlineWorkload wl("misp", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT2, 1103515245);
        as.li(RegT3, 100);
        as.label("loop");
        as.mul(RegT1, RegS0, RegT2);
        as.addi(RegT1, RegT1, 12345);
        as.srli(RegT1, RegT1, 16);
        as.andi(RegT1, RegT1, 1);
        as.beq(RegT1, RegZero, "skip");
        as.addi(RegS1, RegS1, 3);
        as.j("next");
        as.label("skip");
        as.addi(RegS1, RegS1, 1);
        as.label("next");
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        emitFinish(as);
    });
    auto want = runOn(CpuModel::Atomic, wl).result;
    EXPECT_EQ(runOn(GetParam(), wl).result, want);
    EXPECT_GT(want, 100u); // sanity: both paths taken
}

TEST_P(AllCpuModels, SyscallWrite)
{
    InlineWorkload wl("hello", [](Assembler &as, unsigned) {
        as.label("_start");
        // Write "Hi\n" into memory, then write(1, buf, 3).
        as.li(RegT0, 0x200000);
        as.li(RegT1, 'H');
        as.sb(RegT1, RegT0, 0);
        as.li(RegT1, 'i');
        as.sb(RegT1, RegT0, 1);
        as.li(RegT1, '\n');
        as.sb(RegT1, RegT0, 2);
        as.li(RegA7, 64); // SYS_write
        as.li(RegA0, 1);
        as.li(RegA1, 0x200000);
        as.li(RegA2, 3);
        as.ecall();
        as.mv(RegS1, RegA0); // bytes written
        emitFinish(as);
    });
    auto out = runOn(GetParam(), wl);
    EXPECT_EQ(out.result, 3u);
    EXPECT_EQ(out.console, "Hi\n");
}

TEST_P(AllCpuModels, InstLimitHaltsCpu)
{
    InlineWorkload wl("spin", [](Assembler &as, unsigned) {
        as.label("_start");
        as.label("forever");
        as.addi(RegS0, RegS0, 1);
        as.j("forever");
    });
    sim::Simulator sim("system");
    SystemConfig cfg;
    cfg.cpuModel = GetParam();
    cfg.maxInstsPerCpu = 1000;
    System system(sim, cfg, wl);
    auto res = system.run(1'000'000'000'000ULL);
    EXPECT_EQ(res.cause, sim::ExitCause::Finished);
    // The limit is approximate for pipelined models (commit-width
    // granularity) but must be close and nonzero.
    EXPECT_GE(system.cpu(0).numInsts(), 1000u);
    EXPECT_LE(system.cpu(0).numInsts(), 1016u);
}

TEST_P(AllCpuModels, TimingDetailOrdering)
{
    // All models agree on results; ticks reflect the detail level:
    // Atomic is fastest (CPI=1, no memory stalls).
    InlineWorkload wl("order", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 200);
        as.li(RegT2, 0x200000);
        as.label("loop");
        as.andi(RegT0, RegS0, 255);
        as.slli(RegT0, RegT0, 3);
        as.add(RegT0, RegT0, RegT2);
        as.sd(RegS0, RegT0, 0);
        as.ld(RegT1, RegT0, 0);
        as.add(RegS1, RegS1, RegT1);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        emitFinish(as);
    });
    auto atomic = runOn(CpuModel::Atomic, wl);
    auto other = runOn(GetParam(), wl);
    EXPECT_EQ(other.result, atomic.result);
    EXPECT_GE(other.ticks, atomic.ticks);
}

TEST(CpuCheckpoint, AtomicSerializeRestore)
{
    InlineWorkload wl("ckpt", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 1000);
        as.label("loop");
        as.add(RegS1, RegS1, RegS0);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        emitFinish(as);
    });

    // Run partway, checkpoint, then restore into a fresh system and
    // finish — the paper's Boot-Exit methodology (§III).
    sim::CheckpointOut ckpt;
    {
        sim::Simulator sim("system");
        SystemConfig cfg;
        System system(sim, cfg, wl);
        system.run(100'000); // partial
        EXPECT_FALSE(system.allHalted());
        sim.takeCheckpoint(ckpt);
    }
    {
        sim::Simulator sim("system");
        SystemConfig cfg;
        System system(sim, cfg, wl);
        auto in = sim::CheckpointIn::fromText(ckpt.toText());
        sim.restoreCheckpoint(in);
        auto res = system.run(5'000'000'000ULL);
        EXPECT_EQ(res.cause, sim::ExitCause::Finished);
        EXPECT_EQ(system.result(), 499500u);
    }
}

TEST(MultiCore, WorkersAndBarrier)
{
    // Each CPU contributes its id+1; CPU0 sums the partials.
    InlineWorkload wl("mc", [](Assembler &as, unsigned num_cpus) {
        as.label("_start");
        as.addi(RegS1, RegA0, 1);

        // Publish partial, workers raise flags, cpu0 collects.
        as.li(RegT0, 0xa00);
        as.slli(RegT1, RegA0, 3);
        as.add(RegT0, RegT0, RegT1);
        as.sd(RegS1, RegT0, 0);
        as.bne(RegA0, RegZero, "worker");

        for (unsigned w = 1; w < num_cpus; ++w) {
            std::string lbl = "wait" + std::to_string(w);
            as.li(RegT0,
                  (std::int64_t)GuestWorkload::doneFlagAddr(w));
            as.label(lbl);
            as.ld(RegT1, RegT0, 0);
            as.beq(RegT1, RegZero, lbl);
        }
        as.li(RegS1, 0);
        as.li(RegT0, 0xa00);
        as.li(RegT2, 0);
        as.li(RegT3, (std::int64_t)num_cpus);
        as.label("sum");
        as.ld(RegT1, RegT0, 0);
        as.add(RegS1, RegS1, RegT1);
        as.addi(RegT0, RegT0, 8);
        as.addi(RegT2, RegT2, 1);
        as.blt(RegT2, RegT3, "sum");
        as.li(RegT0, (std::int64_t)GuestWorkload::resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();

        as.label("worker");
        as.li(RegT0, (std::int64_t)GuestWorkload::doneFlagAddr(0));
        as.slli(RegT1, RegA0, 3);
        as.add(RegT0, RegT0, RegT1);
        as.li(RegT1, 1);
        as.sd(RegT1, RegT0, 0);
        as.halt();
    });

    for (CpuModel model : allCpuModels) {
        auto out = runOn(model, wl, 4);
        EXPECT_EQ(out.result, 1u + 2 + 3 + 4)
            << "on " << cpuModelName(model);
    }
}
