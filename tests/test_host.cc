/**
 * @file
 * Tests for the host microarchitecture model: counting caches, mixed
 * page-size TLBs, branch predictor classes, DSB, uncore levels,
 * Top-Down accounting identities, and co-run transformations.
 */

#include <gtest/gtest.h>

#include "base/random.hh"

#include "host/corun.hh"
#include "host/host_core.hh"
#include "host/platforms.hh"

using namespace g5p;
using namespace g5p::host;
using trace::HostOp;

namespace
{

HostOp
aluOp(HostAddr pc)
{
    HostOp op;
    op.pc = pc;
    return op;
}

HostOp
loadOp(HostAddr pc, HostAddr addr)
{
    HostOp op;
    op.pc = pc;
    op.kind = HostOp::Kind::Load;
    op.dataAddr = addr;
    op.dataSize = 8;
    return op;
}

HostOp
branchOp(HostAddr pc, bool taken, HostAddr target)
{
    HostOp op;
    op.pc = pc;
    op.kind = HostOp::Kind::Branch;
    op.conditional = true;
    op.taken = taken;
    op.target = taken ? target : pc + 4;
    return op;
}

} // namespace

TEST(HostCache, HitMissAndOccupancy)
{
    HostCache cache({1024, 2, 64}); // 8 sets
    EXPECT_FALSE(cache.access(0x0, false));
    EXPECT_TRUE(cache.access(0x8, false)); // same line
    EXPECT_EQ(cache.validLines(), 1u);
    EXPECT_EQ(cache.occupancyBytes(), 64u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(HostCache, LruWithinSet)
{
    HostCache cache({1024, 2, 64}); // 8 sets; set stride 512B
    cache.access(0x0000, false);
    cache.access(0x0200, false);
    cache.access(0x0000, false); // refresh
    cache.access(0x0400, false); // evicts 0x0200
    EXPECT_TRUE(cache.contains(0x0000));
    EXPECT_FALSE(cache.contains(0x0200));
    EXPECT_TRUE(cache.contains(0x0400));
    EXPECT_EQ(cache.validLines(), 2u);
}

/** Capacity property: a working set larger than the cache thrashes. */
class HostCacheCapacity
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(HostCacheCapacity, WorkingSetVsCapacity)
{
    std::uint64_t cache_kb = GetParam();
    HostCache cache({cache_kb * 1024, 8, 64});

    // Stream a 64KB working set twice; the second pass hit rate
    // reflects whether it fits.
    auto pass = [&] {
        for (HostAddr a = 0; a < 64 * 1024; a += 64)
            cache.access(a, false);
    };
    pass();
    std::uint64_t before = cache.hits();
    pass();
    double second_pass_hits = (double)(cache.hits() - before) / 1024;
    if (cache_kb >= 64)
        EXPECT_GT(second_pass_hits, 0.99);
    else
        EXPECT_LT(second_pass_hits, 0.01); // LRU streaming thrash
}

INSTANTIATE_TEST_SUITE_P(Sizes, HostCacheCapacity,
                         ::testing::Values(8u, 16u, 32u, 128u));

TEST(HostCache, LineSizeChangesMissCount)
{
    // The M1's 128B lines halve compulsory misses on a stream — one
    // of the paper's Fig. 8 mechanisms.
    HostCache small({32 * 1024, 8, 64});
    HostCache large({32 * 1024, 8, 128});
    for (HostAddr a = 0; a < 16 * 1024; a += 8) {
        small.access(a, false);
        large.access(a, false);
    }
    EXPECT_NEAR((double)small.misses() / large.misses(), 2.0, 0.1);
}

TEST(PageSizePolicy, HugeRegionsIncreaseReach)
{
    PageSizePolicy policy(12);
    policy.addHugeRegion(0x40'0000, 0x100'0000, 1.0);
    EXPECT_EQ(policy.pageBits(0x1000), 12u);
    EXPECT_EQ(policy.pageBits(0x50'0000), 21u);
    EXPECT_EQ(policy.pageBits(0x200'0000), 12u);
}

TEST(PageSizePolicy, PartialCoverageIsChunkGranular)
{
    PageSizePolicy policy(12);
    policy.addHugeRegion(0, 1ull << 32, 0.5);
    unsigned huge = 0, base = 0;
    for (HostAddr chunk = 0; chunk < 200; ++chunk) {
        unsigned bits = policy.pageBits(chunk << 21);
        // Every address inside one 2MB chunk agrees.
        EXPECT_EQ(policy.pageBits((chunk << 21) + 0x12345), bits);
        (bits == 21 ? huge : base) += 1;
    }
    EXPECT_GT(huge, 70u);
    EXPECT_GT(base, 70u);
}

TEST(HostTlb, HugePagesReduceMisses)
{
    PageSizePolicy base_policy(12);
    PageSizePolicy huge_policy(12);
    huge_policy.addHugeRegion(0, 1ull << 30, 1.0);

    HostTlb base_tlb({64, 4}, &base_policy);
    HostTlb huge_tlb({64, 4}, &huge_policy);

    // Walk 4MB of code twice: 1024 base pages vs 2 huge pages.
    for (int pass = 0; pass < 2; ++pass) {
        for (HostAddr a = 0; a < (4u << 20); a += 256) {
            base_tlb.access(a);
            huge_tlb.access(a);
        }
    }
    EXPECT_GT(base_tlb.misses(), 100 * huge_tlb.misses());
}

TEST(HostTlb, LargerPageSizeIncreasesReach)
{
    // The M1's 16KB pages quadruple TLB reach (Fig. 8).
    PageSizePolicy p4k(12), p16k(14);
    HostTlb t4k({64, 4}, &p4k);
    HostTlb t16k({64, 4}, &p16k);
    for (int pass = 0; pass < 3; ++pass) {
        for (HostAddr a = 0; a < (1u << 20); a += 512) {
            t4k.access(a);
            t16k.access(a);
        }
    }
    EXPECT_GT(t4k.missRate(), 2 * t16k.missRate());
}

TEST(BranchPredictor, LearnsBiasedSites)
{
    HostBranchPredictor bp({14, 1024, 16, 256});
    HostOp br = branchOp(0x1000, true, 0x1040);
    for (int i = 0; i < 100; ++i)
        bp.resolve(br);
    // After warmup the site predicts perfectly.
    EXPECT_LT(bp.mispredicts(), 4u);
    EXPECT_EQ(bp.branches(), 100u);
}

TEST(BranchPredictor, UnbiasedSiteMispredicts)
{
    HostBranchPredictor bp({14, 1024, 16, 256});
    Rng rng(9);
    unsigned before;
    for (int i = 0; i < 2000; ++i)
        bp.resolve(branchOp(0x2000, rng.chance(0.5), 0x2080));
    before = (unsigned)bp.mispredicts();
    EXPECT_GT(before, 600u); // ~50% is unlearnable
}

TEST(BranchPredictor, RasPredictsReturns)
{
    HostBranchPredictor bp({14, 1024, 16, 256});
    // call at 0x3000 -> ret to 0x3005.
    HostOp call;
    call.pc = 0x3000;
    call.lenBytes = 5;
    call.kind = HostOp::Kind::Branch;
    call.taken = true;
    call.isCall = true;
    call.target = 0x9000;

    HostOp ret;
    ret.pc = 0x9040;
    ret.kind = HostOp::Kind::Branch;
    ret.taken = true;
    ret.indirect = true;
    ret.isReturn = true;
    ret.target = 0x3005;

    for (int i = 0; i < 50; ++i) {
        bp.resolve(call);
        auto res = bp.resolve(ret);
        EXPECT_FALSE(res.mispredicted) << "iteration " << i;
    }
}

TEST(BranchPredictor, PolymorphicIndirectThrashes)
{
    HostBranchPredictor bp({14, 1024, 16, 256});
    HostOp ind;
    ind.pc = 0x4000;
    ind.kind = HostOp::Kind::Branch;
    ind.taken = true;
    ind.indirect = true;

    // Monomorphic site: learns after one miss.
    ind.target = 0xa000;
    bp.resolve(ind);
    auto mono_misses = bp.indirectMispredicts();
    for (int i = 0; i < 20; ++i)
        bp.resolve(ind);
    EXPECT_EQ(bp.indirectMispredicts(), mono_misses);

    // Alternating targets: every call mispredicts.
    for (int i = 0; i < 20; ++i) {
        ind.target = i % 2 ? 0xb000 : 0xc000;
        bp.resolve(ind);
    }
    EXPECT_GE(bp.indirectMispredicts(), mono_misses + 19);
}

TEST(BranchPredictor, UnknownBranchAfterBtbEviction)
{
    HostBranchPredictor bp({14, 1024, 16, 256});
    // Two always-taken sites that alias in the 1024-entry BTB
    // (index = (pc >> 1) % 1024, so a 2KB stride collides) but use
    // different direction counters.
    HostOp a = branchOp(0x10000, true, 0x20000);
    HostOp b = branchOp(0x10000 + 2048, true, 0x30000);

    bp.resolve(a);
    bp.resolve(a); // direction trained, BTB holds a
    bp.resolve(b);
    bp.resolve(b); // BTB now holds b (evicted a)

    auto res = bp.resolve(a);
    EXPECT_TRUE(res.unknownBranch)
        << "taken branch with evicted BTB target must resteer";
    EXPECT_FALSE(res.mispredicted);
}

TEST(Dsb, CapacityEviction)
{
    DsbModel dsb({64, 8, 0}); // 64 windows = 2KB, all eligible
    // An 8KB loop cannot live in a 2KB DSB.
    for (int pass = 0; pass < 3; ++pass)
        for (HostAddr a = 0; a < 8192; a += 32)
            dsb.access(a);
    double hit_rate =
        (double)dsb.hits() / (dsb.hits() + dsb.misses());
    EXPECT_LT(hit_rate, 0.05);

    DsbModel big({512, 8, 0}); // 16KB: fits
    for (int pass = 0; pass < 3; ++pass)
        for (HostAddr a = 0; a < 8192; a += 32)
            big.access(a);
    double big_rate =
        (double)big.hits() / (big.hits() + big.misses());
    EXPECT_GT(big_rate, 0.6);
}

TEST(Dsb, DisabledAlwaysMisses)
{
    DsbModel dsb({0, 1, 0});
    EXPECT_FALSE(dsb.enabled());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(dsb.access(0x1000));
    EXPECT_EQ(dsb.hits(), 0u);
}

TEST(Dsb, IneligibleWindowsNeverCache)
{
    DsbModel dsb({512, 8, 100}); // everything ineligible
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(dsb.access(0x40'0000));
}

TEST(Uncore, LevelsAndDramBytes)
{
    HostPlatformConfig cfg = xeonConfig();
    cfg.l2 = {64 * 1024, 8, 64};
    cfg.llc = {1024 * 1024, 16, 64};
    Uncore uncore(cfg);

    auto first = uncore.access(0x123456, false);
    EXPECT_EQ(first.level, Uncore::Level::Memory);
    EXPECT_EQ(uncore.dramBytes(), 64u);

    auto second = uncore.access(0x123456, false);
    EXPECT_EQ(second.level, Uncore::Level::L2);
    EXPECT_LT(second.latencyCycles, first.latencyCycles);
    EXPECT_EQ(uncore.dramBytes(), 64u);
}

TEST(Uncore, LlcCatchesL2Victims)
{
    HostPlatformConfig cfg = xeonConfig();
    cfg.l2 = {4 * 1024, 4, 64};      // tiny L2
    cfg.llc = {1024 * 1024, 16, 64}; // roomy LLC
    Uncore uncore(cfg);

    for (HostAddr a = 0; a < 64 * 1024; a += 64)
        uncore.access(a, false);
    // Second pass: everything overflowed L2 but lives in LLC.
    auto res = uncore.access(0x0, false);
    EXPECT_EQ(res.level, Uncore::Level::Llc);
    EXPECT_GT(uncore.llcOccupancyPeakBytes(), 32u * 1024);
}

TEST(Uncore, NoLlcGoesStraightToMemory)
{
    HostPlatformConfig cfg = firesimConfig();
    cfg.l2 = {4 * 1024, 4, 64};
    Uncore uncore(cfg);
    for (HostAddr a = 0; a < 64 * 1024; a += 64)
        uncore.access(a, false);
    auto res = uncore.access(0x0, false);
    EXPECT_EQ(res.level, Uncore::Level::Memory);
}

TEST(Topdown, SlotsSumToOne)
{
    // Drive a mixed stream; the Top-Down buckets must cover every
    // slot exactly (the accounting identity).
    HostPlatformConfig cfg = xeonConfig();
    PageSizePolicy policy(cfg.pageBits);
    HostCore core(cfg, policy);

    Rng rng(31);
    HostAddr pc = 0x40'0000;
    for (int i = 0; i < 200000; ++i) {
        if (rng.chance(0.2)) {
            bool taken = rng.chance(0.4);
            HostAddr target = 0x40'0000 + rng.below(1 << 20);
            core.op(branchOp(pc, taken, target));
            pc = taken ? target : pc + 4;
        } else if (rng.chance(0.3)) {
            core.op(loadOp(pc, 0x2000'0000 + rng.below(1 << 22)));
            pc += 4;
        } else {
            core.op(aluOp(pc));
            pc += 4;
        }
    }

    TopdownBreakdown td = core.topdown();
    EXPECT_NEAR(td.total(), 1.0, 1e-9);
    EXPECT_NEAR(td.frontendLatency,
                td.feIcache + td.feItlb + td.feMispredictResteers +
                    td.feUnknownBranches + td.feClearResteers,
                1e-12);
    EXPECT_NEAR(td.backendBound, td.beMemory + td.beCore, 1e-12);
    EXPECT_GT(td.retiring, 0.0);
    EXPECT_GT(core.counters().ipc(), 0.0);
    EXPECT_LE(core.counters().ipc(), cfg.dispatchWidth);
}

TEST(Topdown, CountersAddIsConsistent)
{
    HostCounters a, b;
    a.insts = 10;
    a.uops = 12;
    a.baseCycles = 3;
    a.llcOccupancyBytes = 100;
    b.insts = 5;
    b.uops = 6;
    b.baseCycles = 1.5;
    b.llcOccupancyBytes = 300;
    a.add(b);
    EXPECT_EQ(a.insts, 15u);
    EXPECT_DOUBLE_EQ(a.baseCycles, 4.5);
    EXPECT_EQ(a.llcOccupancyBytes, 300u); // max, not sum
}

TEST(Platforms, TableIIGeometry)
{
    auto xeon = xeonConfig();
    auto pro = m1ProConfig();
    auto ultra = m1UltraConfig();

    EXPECT_EQ(xeon.lineBytes, 64u);
    EXPECT_EQ(pro.lineBytes, 128u);
    EXPECT_EQ(xeon.pageBits, 12u);
    EXPECT_EQ(pro.pageBits, 14u);
    EXPECT_EQ(pro.icache.sizeBytes, 192u * 1024);
    EXPECT_EQ(pro.dcache.sizeBytes, 128u * 1024);
    EXPECT_EQ(xeon.icache.sizeBytes, 32u * 1024);
    EXPECT_FALSE(pro.smtCapable);
    EXPECT_TRUE(xeon.smtCapable);
    EXPECT_EQ(xeon.hwThreads, 40u);
    EXPECT_EQ(ultra.physicalCores, 16u);
    EXPECT_GT(ultra.llc.sizeBytes, pro.llc.sizeBytes);

    // Derived quantities.
    EXPECT_NEAR(xeon.effectiveHz(), 3.1e9, 1e6);
    EXPECT_NEAR(xeon.effectiveHz(true), 4.1e9, 1e6);
    EXPECT_NEAR(xeon.memLatencyCycles(), 96 * 3.1, 0.5);
}

TEST(Platforms, AllPlatformsInstantiate)
{
    // Every published config must have legal cache/TLB geometry
    // end to end (this guards the power-of-two constraints).
    for (const auto &cfg : tableIIPlatforms()) {
        PageSizePolicy policy(cfg.pageBits);
        HostCore core(cfg, policy);
        core.op(trace::HostOp{});
        EXPECT_GT(core.counters().insts, 0u) << cfg.name;
    }
    auto fs = firesimConfig();
    PageSizePolicy policy(fs.pageBits);
    HostCore core(fs, policy);
    core.op(trace::HostOp{});
}

TEST(Platforms, FiresimCacheConfigKeeps64Sets)
{
    auto cfg = firesimCacheConfig(16, 4, 16, 4, 1024, 8);
    EXPECT_EQ(cfg.icache.numSets(), 64u);
    EXPECT_EQ(cfg.icache.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.l2.sizeBytes, 1024u * 1024);
    EXPECT_FALSE(cfg.hasLlc);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(PlatformsDeath, BadViptConfigPanics)
{
    // 16KB 2-way would be 128 sets, violating the VIPT constraint.
    EXPECT_DEATH(firesimCacheConfig(16, 2, 16, 4, 512, 8),
                 "64 sets");
}
#endif

TEST(Corun, ScenariosMatchTopology)
{
    auto xeon = xeonConfig();
    EXPECT_EQ(perPhysicalCore(xeon).processes, 20u);
    EXPECT_FALSE(perPhysicalCore(xeon).smt);
    EXPECT_EQ(perHardwareThread(xeon).processes, 40u);
    EXPECT_TRUE(perHardwareThread(xeon).smt);

    auto pro = m1ProConfig();
    EXPECT_EQ(perHardwareThread(pro).processes, 4u);
    EXPECT_FALSE(perHardwareThread(pro).smt); // no SMT on M1
}

TEST(Corun, SharedCachesArePartitioned)
{
    auto xeon = xeonConfig();
    auto shared = applyCorun(xeon, perPhysicalCore(xeon));
    // L2 is private per core: untouched. LLC divided among 20.
    EXPECT_EQ(shared.l2.sizeBytes, xeon.l2.sizeBytes);
    EXPECT_LT(shared.llc.sizeBytes, xeon.llc.sizeBytes / 10);
    // Private L1s untouched without SMT.
    EXPECT_EQ(shared.icache.sizeBytes, xeon.icache.sizeBytes);
}

TEST(Corun, SmtHalvesCorePrivateResources)
{
    auto xeon = xeonConfig();
    auto smt = applyCorun(xeon, perHardwareThread(xeon));
    EXPECT_EQ(smt.icache.sizeBytes, xeon.icache.sizeBytes / 2);
    EXPECT_EQ(smt.dcache.sizeBytes, xeon.dcache.sizeBytes / 2);
    EXPECT_EQ(smt.l2.sizeBytes, xeon.l2.sizeBytes / 2);
    EXPECT_LT(smt.miteUopsPerCycle, xeon.miteUopsPerCycle);
    EXPECT_EQ(smt.dsb.windows, xeon.dsb.windows / 2);
}

TEST(Corun, SingleProcessIsIdentity)
{
    auto xeon = xeonConfig();
    auto same = applyCorun(xeon, singleProcess());
    EXPECT_EQ(same.llc.sizeBytes, xeon.llc.sizeBytes);
    EXPECT_EQ(same.name, xeon.name);
}
