/**
 * @file
 * End-to-end tests of the experiment harness: determinism, guest
 * correctness under profiling, and the paper's headline qualitative
 * properties (M1 faster than Xeon, footprint grows with CPU detail,
 * negligible DRAM bandwidth, no killer function).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace g5p;
using namespace g5p::core;

namespace
{

RunConfig
baseConfig(os::CpuModel model = os::CpuModel::Atomic)
{
    RunConfig cfg;
    cfg.workload = "water_nsquared";
    cfg.workloadScale = 0.3;
    cfg.cpuModel = model;
    cfg.platform = host::xeonConfig();
    return cfg;
}

} // namespace

TEST(Experiment, GuestResultVerifiedUnderProfiling)
{
    RunResult r = runProfiledSimulation(baseConfig());
    EXPECT_TRUE(r.resultChecked);
    EXPECT_TRUE(r.resultOk);
    EXPECT_GT(r.guestInsts, 1000u);
    EXPECT_GT(r.hostInsts, r.guestInsts * 10);
    EXPECT_GT(r.hostSeconds, 0.0);
}

TEST(Experiment, DeterministicForSeed)
{
    RunResult a = runProfiledSimulation(baseConfig());
    RunResult b = runProfiledSimulation(baseConfig());
    EXPECT_EQ(a.hostInsts, b.hostInsts);
    EXPECT_DOUBLE_EQ(a.hostSeconds, b.hostSeconds);
    EXPECT_EQ(a.counters.icacheMisses, b.counters.icacheMisses);
    EXPECT_EQ(a.counters.mispredicts, b.counters.mispredicts);
    EXPECT_EQ(a.distinctFunctions, b.distinctFunctions);
}

TEST(Experiment, SeedChangesStream)
{
    RunConfig cfg = baseConfig();
    RunResult a = runProfiledSimulation(cfg);
    cfg.seed = 99;
    RunResult b = runProfiledSimulation(cfg);
    EXPECT_NE(a.hostInsts, b.hostInsts);
    // But the guest computation is unaffected.
    EXPECT_EQ(a.guestResult, b.guestResult);
    EXPECT_EQ(a.guestInsts, b.guestInsts);
}

TEST(Experiment, TopdownIdentityHolds)
{
    for (os::CpuModel model : os::allCpuModels) {
        RunResult r = runProfiledSimulation(baseConfig(model));
        EXPECT_NEAR(r.topdown.total(), 1.0, 1e-9)
            << os::cpuModelName(model);
        EXPECT_GT(r.topdown.retiring, 0.1);
        EXPECT_GT(r.topdown.frontendBound(), 0.02);
    }
}

TEST(Experiment, DetailGrowsFootprintAndFunctions)
{
    RunResult atomic =
        runProfiledSimulation(baseConfig(os::CpuModel::Atomic));
    RunResult o3 = runProfiledSimulation(baseConfig(os::CpuModel::O3));

    // Paper §IV/§VI: more detail => more functions, bigger text,
    // more i-side misses, longer simulation.
    EXPECT_GT(o3.distinctFunctions, atomic.distinctFunctions * 2);
    EXPECT_GT(o3.codeBytes, atomic.codeBytes);
    EXPECT_GT(o3.hostSeconds, atomic.hostSeconds * 2);
    double o3_mpki =
        1000.0 * o3.counters.icacheMisses / o3.counters.insts;
    double atomic_mpki =
        1000.0 * atomic.counters.icacheMisses / atomic.counters.insts;
    EXPECT_GT(o3_mpki, 2 * atomic_mpki);
}

TEST(Experiment, M1FasterThanXeon)
{
    // The paper's headline (Fig. 1): same simulation, 1.7x-3x faster
    // on M1 thanks to L1/TLB geometry.
    RunConfig cfg = baseConfig(os::CpuModel::O3);
    cfg.platform = host::xeonConfig();
    RunResult xeon = runProfiledSimulation(cfg);
    cfg.platform = host::m1ProConfig();
    RunResult m1 = runProfiledSimulation(cfg);

    double speedup = xeon.hostSeconds / m1.hostSeconds;
    EXPECT_GT(speedup, 1.3) << "M1 must win clearly";
    EXPECT_LT(speedup, 5.0) << "but not absurdly";

    // Fig. 8 mechanisms: lower iTLB and iCache miss rates on M1.
    double xeon_itlb = (double)xeon.counters.itlbMisses /
                       std::max<std::uint64_t>(1,
                           xeon.counters.itlbAccesses);
    double m1_itlb = (double)m1.counters.itlbMisses /
                     std::max<std::uint64_t>(1,
                         m1.counters.itlbAccesses);
    EXPECT_GT(xeon_itlb, m1_itlb);
    EXPECT_GT(xeon.ipc, 0.0);
    EXPECT_GT(m1.ipc / xeon.ipc, 1.2); // Fig. 7: ~2.2x IPC
}

TEST(Experiment, DramBandwidthNegligible)
{
    // Fig. 9: gem5 barely touches DRAM.
    RunResult r = runProfiledSimulation(baseConfig(os::CpuModel::O3));
    double gbs = r.counters.dramBytes / 1e9 / r.hostSeconds;
    EXPECT_LT(gbs, 5.0); // out of 141 GB/s
}

TEST(Experiment, NoKillerFunction)
{
    // Fig. 15: the hottest function stays a small share, smaller for
    // more detailed models.
    RunResult atomic =
        runProfiledSimulation(baseConfig(os::CpuModel::Atomic));
    RunResult o3 = runProfiledSimulation(baseConfig(os::CpuModel::O3));
    EXPECT_LT(atomic.functionCdf.hottestShare(), 0.25);
    EXPECT_LT(o3.functionCdf.hottestShare(),
              atomic.functionCdf.hottestShare());
    // The CDF is monotone and bounded.
    EXPECT_LE(o3.functionCdf.cumulativeShare(50), 1.0 + 1e-9);
    EXPECT_GE(o3.functionCdf.cumulativeShare(50),
              o3.functionCdf.cumulativeShare(10));
}

TEST(Experiment, CorunSlowsPerProcessTime)
{
    RunConfig cfg = baseConfig(os::CpuModel::Timing);
    RunResult single = runProfiledSimulation(cfg);

    cfg.corun = host::perHardwareThread(cfg.platform); // 40, SMT
    RunResult smt = runProfiledSimulation(cfg);
    EXPECT_GT(smt.hostSeconds, single.hostSeconds * 1.1)
        << "SMT co-run must contend for L1/decoder";
}

TEST(Experiment, SpecReferencesHaveDocumentedCharacter)
{
    auto platform = host::xeonConfig();
    RunResult x264 =
        runSpecReference(workloads::specX264(), platform);
    RunResult sjeng =
        runSpecReference(workloads::specDeepsjeng(), platform);
    RunResult mcf = runSpecReference(workloads::specMcf(), platform);

    // 525.x264_r: highest IPC; 505.mcf_r: lowest IPC (§III).
    EXPECT_GT(x264.ipc, sjeng.ipc);
    EXPECT_GT(x264.ipc, 2 * mcf.ipc);
    EXPECT_LE(mcf.ipc, sjeng.ipc + 0.1);

    // mcf is backend bound; x264 is retiring-heavy.
    EXPECT_GT(mcf.topdown.backendBound, 0.4);
    EXPECT_GT(x264.topdown.retiring, 0.5);

    // deepsjeng has the worst LLC behaviour per instruction.
    double sjeng_llc = (double)sjeng.counters.llcMisses /
                       sjeng.counters.insts;
    double x264_llc = (double)x264.counters.llcMisses /
                      x264.counters.insts;
    EXPECT_GT(sjeng_llc, x264_llc);

    // gem5's DSB coverage is poorer than x264's (Fig. 6).
    RunResult gem5 = runProfiledSimulation(baseConfig());
    EXPECT_LT(gem5.counters.dsbCoverage(),
              x264.counters.dsbCoverage());
}

TEST(Experiment, EffectivePlatformAppliesOverrides)
{
    RunConfig cfg = baseConfig();
    cfg.tuning.freqGHzOverride = 1.2;
    auto platform = effectivePlatform(cfg);
    EXPECT_DOUBLE_EQ(platform.freqGHz, 1.2);

    cfg.corun = host::perHardwareThread(cfg.platform);
    platform = effectivePlatform(cfg);
    EXPECT_LT(platform.icache.sizeBytes,
              cfg.platform.icache.sizeBytes);
}
