/**
 * @file
 * Unit tests for the guest memory system: physical memory, caches
 * (atomic + timing protocols, LRU, MSHRs, writebacks), the coherent
 * crossbar's snooping, DRAM, TLBs, and page tables.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/page_table.hh"
#include "mem/physical.hh"
#include "mem/tlb.hh"
#include "mem/xbar.hh"
#include "sim/simulator.hh"

using namespace g5p;
using namespace g5p::mem;
using g5p::sim::ClockDomain;
using g5p::sim::Simulator;

namespace
{

/** Collects timing responses for test assertions. */
class SinkPort : public RequestPort
{
  public:
    SinkPort() : RequestPort("test.sink") {}

    void
    recvTimingResp(PacketPtr pkt) override
    {
        responses.push_back(pkt->cmd());
        lastAddr = pkt->addr();
        delete pkt;
    }

    std::vector<MemCmd> responses;
    Addr lastAddr = 0;
};

/** A full little memory system: L1 -> xbar -> L2 -> DRAM. */
struct MemHarness
{
    Simulator sim{"system"};
    ClockDomain clock = ClockDomain::fromMHz(1000); // 1000 ticks
    PhysicalMemory physmem{sim, "physmem", 1 << 20};
    DramCtrl dram{sim, "dram", clock, physmem, DramParams{}};
    Cache l2{sim, "l2", clock,
             CacheParams{64 * 1024, 8, 2, 2, 1, 16, false}};
    CoherentXbar xbar{sim, "xbar", clock, XbarParams{}};
    Cache l1a{sim, "l1a", clock,
              CacheParams{4 * 1024, 2, 1, 1, 1, 4, true}};
    Cache l1b{sim, "l1b", clock,
              CacheParams{4 * 1024, 2, 1, 1, 1, 4, true}};
    SinkPort cpu_a, cpu_b;

    MemHarness()
    {
        l2.memSidePort().bind(dram.port());
        xbar.memSidePort().bind(l2.cpuSidePort());
        l1a.memSidePort().bind(xbar.addUpstreamPort(&l1a));
        l1b.memSidePort().bind(xbar.addUpstreamPort(&l1b));
        cpu_a.bind(l1a.cpuSidePort());
        cpu_b.bind(l1b.cpuSidePort());
        sim.run(0); // init phases
    }

    /** Atomic access through L1 A; returns the latency. */
    Tick
    atomicA(MemCmd cmd, Addr addr)
    {
        Packet pkt(cmd, addr, 8);
        return cpu_a.sendAtomic(pkt);
    }
};

} // namespace

TEST(PhysicalMemory, ReadWriteRoundTrip)
{
    Simulator sim("system");
    PhysicalMemory mem(sim, "physmem", 64 * 1024);
    mem.write(0x100, 8, 0x1122334455667788ULL);
    EXPECT_EQ(mem.read(0x100, 8), 0x1122334455667788ULL);
    EXPECT_EQ(mem.read(0x100, 4), 0x55667788ULL);
    EXPECT_EQ(mem.read(0x104, 4), 0x11223344ULL);
    mem.write(0x104, 1, 0xff);
    EXPECT_EQ(mem.read(0x104, 1), 0xffULL);
}

TEST(PhysicalMemory, TracksTouchedPages)
{
    Simulator sim("system");
    PhysicalMemory mem(sim, "physmem", 64 * 1024);
    EXPECT_EQ(mem.pagesTouched(), 0u);
    mem.write(0x0, 1, 1);
    mem.write(0x10, 1, 1);   // same page
    mem.write(0x1000, 1, 1); // next page
    EXPECT_EQ(mem.pagesTouched(), 2u);
}

TEST(PhysicalMemory, CheckpointRestoresData)
{
    sim::CheckpointOut out;
    {
        Simulator sim("system");
        PhysicalMemory mem(sim, "physmem", 64 * 1024);
        mem.write(0x2345, 8, 0xabcdef);
        out.pushSection("m");
        mem.serialize(out);
        out.popSection();
    }
    Simulator sim2("system");
    PhysicalMemory mem2(sim2, "physmem", 64 * 1024);
    auto in = sim::CheckpointIn::fromText(out.toText());
    in.pushSection("m");
    mem2.unserialize(in);
    EXPECT_EQ(mem2.read(0x2345, 8), 0xabcdefULL);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(PhysicalMemoryDeath, OutOfRangePanics)
{
    Simulator sim("system");
    PhysicalMemory mem(sim, "physmem", 4096);
    EXPECT_DEATH(mem.read(4096, 8), "out of range");
}
#endif

TEST(Cache, AtomicMissThenHit)
{
    MemHarness h;
    Tick miss = h.atomicA(MemCmd::ReadReq, 0x1000);
    Tick hit = h.atomicA(MemCmd::ReadReq, 0x1008); // same line
    EXPECT_GT(miss, hit);
    EXPECT_EQ(h.l1a.hits(), 1u);
    EXPECT_EQ(h.l1a.misses(), 1u);
}

TEST(Cache, LruEvictsOldest)
{
    MemHarness h;
    // 4KB, 2-way, 64B lines -> 32 sets; set 0 addresses stride 2KB.
    h.atomicA(MemCmd::ReadReq, 0x0000);
    h.atomicA(MemCmd::ReadReq, 0x0800);
    h.atomicA(MemCmd::ReadReq, 0x0000); // refresh LRU of line 0
    h.atomicA(MemCmd::ReadReq, 0x1000); // evicts 0x0800
    EXPECT_TRUE(h.l1a.isCached(0x0000));
    EXPECT_FALSE(h.l1a.isCached(0x0800));
    EXPECT_TRUE(h.l1a.isCached(0x1000));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    MemHarness h;
    h.atomicA(MemCmd::WriteReq, 0x0000);
    h.atomicA(MemCmd::ReadReq, 0x0800);
    h.atomicA(MemCmd::ReadReq, 0x1000); // evicts dirty 0x0000
    EXPECT_GE(h.l1a.writebacks(), 1u);
    // The L2 should now hold the written-back line dirty.
    EXPECT_TRUE(h.l2.isCached(0x0000));
}

TEST(Cache, TimingMissProducesResponse)
{
    MemHarness h;
    auto *pkt = new Packet(MemCmd::ReadReq, 0x4000, 8);
    h.cpu_a.sendTimingReq(pkt);
    h.sim.run(); // drain all events
    ASSERT_EQ(h.cpu_a.responses.size(), 1u);
    EXPECT_EQ(h.cpu_a.responses[0], MemCmd::ReadResp);
    EXPECT_TRUE(h.l1a.isCached(0x4000));
}

TEST(Cache, TimingHitFasterThanMiss)
{
    MemHarness h;
    auto *p1 = new Packet(MemCmd::ReadReq, 0x4000, 8);
    h.cpu_a.sendTimingReq(p1);
    h.sim.run();
    Tick miss_done = h.sim.curTick();

    auto *p2 = new Packet(MemCmd::ReadReq, 0x4000, 8);
    h.cpu_a.sendTimingReq(p2);
    h.sim.run();
    Tick hit_latency = h.sim.curTick() - miss_done;
    EXPECT_LT(hit_latency, miss_done);
    EXPECT_EQ(h.cpu_a.responses.size(), 2u);
}

TEST(Cache, MshrCoalescesSameLine)
{
    MemHarness h;
    h.cpu_a.sendTimingReq(new Packet(MemCmd::ReadReq, 0x4000, 8));
    h.cpu_a.sendTimingReq(new Packet(MemCmd::ReadReq, 0x4008, 8));
    h.sim.run();
    EXPECT_EQ(h.cpu_a.responses.size(), 2u);
    // One fill served both requests.
    EXPECT_EQ(h.l2.misses() + h.l2.hits(), 1u);
}

TEST(Cache, DeferredRequestsSurviveMshrPressure)
{
    MemHarness h; // l1a has 4 MSHRs
    for (int i = 0; i < 8; ++i) {
        h.cpu_a.sendTimingReq(
            new Packet(MemCmd::ReadReq, 0x8000 + i * 64, 8));
    }
    h.sim.run();
    EXPECT_EQ(h.cpu_a.responses.size(), 8u);
}

TEST(Xbar, WriteInvalidatesSibling)
{
    MemHarness h;
    // Both L1s read the same line (shared).
    h.atomicA(MemCmd::ReadReq, 0x5000);
    Packet read_b(MemCmd::ReadReq, 0x5000, 8);
    h.cpu_b.sendAtomic(read_b);
    EXPECT_TRUE(h.l1a.isCached(0x5000));
    EXPECT_TRUE(h.l1b.isCached(0x5000));

    // A write from B invalidates A's copy.
    Packet write_b(MemCmd::WriteReq, 0x5000, 8);
    h.cpu_b.sendAtomic(write_b);
    EXPECT_FALSE(h.l1a.isCached(0x5000));
    EXPECT_TRUE(h.l1b.isCached(0x5000));
}

TEST(Xbar, SharedLineNotWritable)
{
    MemHarness h;
    h.atomicA(MemCmd::ReadReq, 0x6000);
    Packet read_b(MemCmd::ReadReq, 0x6000, 8);
    h.cpu_b.sendAtomic(read_b);

    // B's write upgrade must invalidate A even though B had a copy.
    Packet write_b(MemCmd::WriteReq, 0x6000, 8);
    h.cpu_b.sendAtomic(write_b);
    EXPECT_FALSE(h.l1a.isCached(0x6000));
}

TEST(Xbar, TimingWriteInvalidatesSibling)
{
    MemHarness h;
    h.cpu_a.sendTimingReq(new Packet(MemCmd::ReadReq, 0x7000, 8));
    h.cpu_b.sendTimingReq(new Packet(MemCmd::ReadReq, 0x7000, 8));
    h.sim.run();
    EXPECT_TRUE(h.l1a.isCached(0x7000));

    h.cpu_b.sendTimingReq(new Packet(MemCmd::WriteReq, 0x7000, 8));
    h.sim.run();
    EXPECT_FALSE(h.l1a.isCached(0x7000));
    EXPECT_EQ(h.cpu_b.responses.size(), 2u);
}

TEST(Dram, BandwidthQueueing)
{
    Simulator sim("system");
    ClockDomain clock = ClockDomain::fromMHz(1000);
    PhysicalMemory physmem(sim, "physmem", 1 << 20);
    DramParams params;
    params.accessLatency = 1000;
    params.ticksPerByte = 10; // 64B line -> 640 ticks occupancy
    DramCtrl dram(sim, "dram", clock, physmem, params);
    sim.run(0);

    Packet p1(MemCmd::ReadReq, 0, 64);
    Packet p2(MemCmd::ReadReq, 64, 64);
    Tick l1 = dram.port().recvAtomic(p1);
    Tick l2 = dram.port().recvAtomic(p2);
    EXPECT_EQ(l1, 1000u + 640u);
    // Second access queues behind the first transfer.
    EXPECT_GT(l2, l1);
    EXPECT_EQ(dram.reads(), 2u);
}

TEST(PageTable, MapTranslateUnmap)
{
    PageTable pt;
    pt.map(0x5000, 0x9000, true, false);
    auto t = pt.translate(0x5123);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.paddr, 0x9123u);
    EXPECT_TRUE(t.writable);
    EXPECT_FALSE(t.executable);

    EXPECT_FALSE(pt.translate(0x6000).valid);
    pt.unmap(0x5000);
    EXPECT_FALSE(pt.translate(0x5123).valid);
}

TEST(PageTable, MapRangeCoversAllPages)
{
    PageTable pt;
    pt.mapRange(0x10000, 0x10000, 3 * guestPageBytes + 5);
    EXPECT_TRUE(pt.translate(0x10000).valid);
    EXPECT_TRUE(pt.translate(0x13004).valid);
    EXPECT_FALSE(pt.translate(0x14000).valid);
}

TEST(Tlb, MissThenHit)
{
    Simulator sim("system");
    PageTable pt;
    pt.mapRange(0, 0, 1 << 20);
    Tlb tlb(sim, "tlb", TlbParams{16, 4, 20});
    tlb.setPageTable(&pt);

    auto r1 = tlb.translate(0x1234);
    EXPECT_FALSE(r1.hit);
    EXPECT_EQ(r1.latency, 20u);
    EXPECT_TRUE(r1.translation.valid);
    EXPECT_EQ(r1.translation.paddr, 0x1234u);

    auto r2 = tlb.translate(0x1567); // same page
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.latency, 0u);
    EXPECT_EQ(r2.translation.paddr, 0x1567u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, CapacityEviction)
{
    Simulator sim("system");
    PageTable pt;
    pt.mapRange(0, 0, 1 << 24);
    Tlb tlb(sim, "tlb", TlbParams{4, 4, 20}); // one set, 4 ways
    tlb.setPageTable(&pt);

    for (Addr page = 0; page < 5; ++page)
        tlb.translate(page * guestPageBytes);
    // Page 0 was LRU and must have been evicted.
    auto r = tlb.translate(0);
    EXPECT_FALSE(r.hit);
}

TEST(Tlb, FlushDropsEverything)
{
    Simulator sim("system");
    PageTable pt;
    pt.mapRange(0, 0, 1 << 20);
    Tlb tlb(sim, "tlb", TlbParams{16, 4, 20});
    tlb.setPageTable(&pt);
    tlb.translate(0x1000);
    tlb.flush();
    EXPECT_FALSE(tlb.translate(0x1000).hit);
}

TEST(Tlb, UnmappedAddressInvalid)
{
    Simulator sim("system");
    PageTable pt;
    Tlb tlb(sim, "tlb", TlbParams{16, 4, 20});
    tlb.setPageTable(&pt);
    auto r = tlb.translate(0xdead000);
    EXPECT_FALSE(r.translation.valid);
    // Failed walks must not cache the bogus translation.
    EXPECT_FALSE(tlb.translate(0xdead000).hit);
}
