/**
 * @file
 * Sweep-service chaos suite: the three PR 8 acceptance gates, driven
 * end-to-end on real simulations.
 *
 *  - Chaos gate: a sweep killed at every commit-path crash point and
 *    restarted produces result-cache files byte-identical to an
 *    uninterrupted run.
 *  - Supervision gate: transient failures retry with exponential
 *    backoff and then succeed or poison; permanent failures poison
 *    immediately; a hanging job is cut by the per-job wall cap.
 *  - Cache gate: a repeated sweep is served from the verified cache
 *    without dispatching; truncated / bit-flipped / stale-version
 *    entries are evicted and recomputed to identical bytes.
 *
 * Plus resumability: an interrupted guest-kind job continues from its
 * newest valid auto-checkpoint (skipping a corrupt one) and lands on
 * digests identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/sim_error.hh"
#include "service/sweepd.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::service;

namespace fs = std::filesystem;

namespace
{

std::string
freshSpool(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "/g5p_svc_" + tag;
    fs::remove_all(dir);
    return dir;
}

/** Service knobs the tests share: tiny backoff so retry rounds are
 *  cheap, two workers so the MidCompletion crash point is reachable
 *  (it fires on the second commit of a batch). */
ServiceConfig
testConfig(const std::string &spool_dir)
{
    ServiceConfig config;
    config.spoolDir = spool_dir;
    config.binaryVersion = "test-v1";
    config.jobs = 2;
    config.batch = 2;
    config.backoffBaseMs = 0.01;
    return config;
}

/** A cheap real job: sieve at 1/10 scale finishes in milliseconds
 *  on the Atomic model. */
JobSpec
quickSpec()
{
    JobSpec spec;
    spec.workload = "sieve";
    spec.cpuModel = os::CpuModel::Atomic;
    spec.workloadScale = 0.1;
    return spec;
}

/** Workload built from a lambda (test_robustness.cc idiom). */
class InlineWorkload : public os::GuestWorkload
{
  public:
    using EmitFn = std::function<void(isa::Assembler &, unsigned)>;

    InlineWorkload(std::string name, EmitFn emit)
        : name_(std::move(name)), emit_(std::move(emit))
    {}

    std::string name() const override { return name_; }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         os::SimMode mode) const override
    {
        emit_(as, num_cpus);
    }

  private:
    std::string name_;
    EmitFn emit_;
};

/** Register "svc-hang" (a branch-to-self guest that never halts) so
 *  sweep jobs can name it; the wall-cap tests hang on purpose. */
void
registerHangWorkload()
{
    static bool once = [] {
        workloads::Registry::instance().add(
            "svc-hang", [](double) {
                return std::make_unique<InlineWorkload>(
                    "svc-hang", [](isa::Assembler &as, unsigned) {
                        as.label("_start");
                        as.label("spin");
                        as.j("spin");
                    });
            });
        return true;
    }();
    (void)once;
}

/** filename -> bytes of every regular file in @p dir. */
std::map<std::string, std::string>
dirBytes(const std::string &dir)
{
    std::map<std::string, std::string> files;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        files[entry.path().filename().string()] = os.str();
    }
    return files;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

// ---------------------------------------------------------------------
// Chaos gate
// ---------------------------------------------------------------------

TEST(ServiceChaosGate, KilledSweepMatchesUninterruptedByteForByte)
{
    SweepSpec sweep;
    sweep.name = "chaos";
    sweep.workloads = {"sieve"};
    sweep.cpuModels = {"Atomic", "Timing"};
    sweep.cores = {1, 2};
    sweep.workloadScale = 0.1;

    // Reference: the sweep runs start to finish, never interrupted.
    std::string dir_a = freshSpool("chaos_a");
    {
        SweepService service(testConfig(dir_a));
        service.submitSweep(sweep);
        service.runUntilDrained();
        EXPECT_EQ(service.stats().completed, 4u);
        EXPECT_EQ(service.spool().count(JobState::Done), 4u);
        EXPECT_EQ(service.stats().poisoned, 0u);
    }

    // The same sweep, crashed at every commit-path location in turn,
    // each time restarted on the same spool (= kill -9 + restart).
    std::string dir_b = freshSpool("chaos_b");
    {
        SweepService service(testConfig(dir_b));
        service.submitSweep(sweep);
        service.setCrashPoint(CrashPoint::AfterDispatch);
        EXPECT_THROW(service.runUntilDrained(), ServiceCrash);
    }
    {
        SweepService service(testConfig(dir_b));
        // Both jobs of the dispatched batch died running.
        EXPECT_EQ(service.recoveryReport().requeuedRunning, 2u);
        service.setCrashPoint(CrashPoint::MidCompletion);
        EXPECT_THROW(service.runUntilDrained(), ServiceCrash);
    }
    {
        SweepService service(testConfig(dir_b));
        // The first commit landed in done/; the second was lost.
        EXPECT_EQ(service.recoveryReport().requeuedRunning, 1u);
        service.setCrashPoint(CrashPoint::MidCacheWrite);
        EXPECT_THROW(service.runUntilDrained(), ServiceCrash);
    }
    {
        SweepService service(testConfig(dir_b));
        EXPECT_EQ(service.recoveryReport().requeuedRunning, 2u);
        service.runUntilDrained();
        EXPECT_EQ(service.spool().count(JobState::Done), 4u);
        EXPECT_EQ(service.spool().count(JobState::Poisoned), 0u);
        // The MidCacheWrite crash left a stored entry for a job still
        // in running/; after recovery the cache serves it instead of
        // re-running (idempotent commit).
        EXPECT_GE(service.stats().cacheServed, 1u);
    }

    // The gate: the result cache is byte-identical either way.
    auto files_a = dirBytes(dir_a + "/results");
    auto files_b = dirBytes(dir_b + "/results");
    EXPECT_EQ(files_a.size(), 4u);
    ASSERT_EQ(files_a.size(), files_b.size());
    for (const auto &[name, bytes] : files_a) {
        ASSERT_TRUE(files_b.count(name)) << "missing entry " << name;
        EXPECT_EQ(bytes, files_b[name]) << "entry " << name
                                        << " diverged";
    }
}

// ---------------------------------------------------------------------
// Supervision gate
// ---------------------------------------------------------------------

TEST(ServiceSupervision, TransientFailuresRetryWithBackoffThenSucceed)
{
    std::string dir = freshSpool("retry");
    SweepService service(testConfig(dir));

    JobSpec spec = quickSpec();
    spec.failFirstAttempts = 2; // injected transient InvariantErrors
    spec.maxAttempts = 3;
    std::uint64_t id = service.submit(spec);
    ASSERT_NE(id, 0u);
    service.runUntilDrained();

    const ServiceStats &stats = service.stats();
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_GT(stats.backoffMsTotal, 0.0);
    // Exponential: 0.01 + 0.02 ms.
    EXPECT_DOUBLE_EQ(stats.backoffMsTotal, 0.03);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.poisoned, 0u);

    SpoolJob done = service.spool().read(JobState::Done, id);
    EXPECT_EQ(done.attempts, 2u); // failed twice, succeeded third
    EXPECT_TRUE(done.lastError.empty());
}

TEST(ServiceSupervision, RetryBudgetExhaustionPoisons)
{
    std::string dir = freshSpool("poison");
    SweepService service(testConfig(dir));

    JobSpec spec = quickSpec();
    spec.failFirstAttempts = 10; // never heals
    spec.maxAttempts = 2;
    std::uint64_t id = service.submit(spec);
    service.runUntilDrained();

    EXPECT_EQ(service.stats().poisoned, 1u);
    EXPECT_EQ(service.stats().retries, 1u);
    EXPECT_EQ(service.stats().completed, 0u);

    SpoolJob poisoned = service.spool().read(JobState::Poisoned, id);
    EXPECT_EQ(poisoned.attempts, 2u);
    EXPECT_NE(poisoned.lastError.find("Invariant"),
              std::string::npos);
}

TEST(ServiceSupervision, PermanentConfigErrorPoisonsWithoutRetry)
{
    std::string dir = freshSpool("permanent");
    SweepService service(testConfig(dir));

    JobSpec spec = quickSpec();
    spec.workload = "no-such-kernel";
    std::uint64_t id = service.submit(spec);
    service.runUntilDrained();

    // No retry is spent on a job that can never work.
    EXPECT_EQ(service.stats().poisoned, 1u);
    EXPECT_EQ(service.stats().retries, 0u);

    SpoolJob poisoned = service.spool().read(JobState::Poisoned, id);
    EXPECT_EQ(poisoned.attempts, 1u);
    EXPECT_NE(poisoned.lastError.find("Config"), std::string::npos);
}

TEST(ServiceSupervision, WallCapCutsHangingJobShort)
{
    registerHangWorkload();
    std::string dir = freshSpool("wallcap");
    SweepService service(testConfig(dir));

    JobSpec spec;
    spec.workload = "svc-hang"; // branch-to-self, never halts
    spec.wallCapSeconds = 0.1;
    spec.maxAttempts = 2;
    std::uint64_t id = service.submit(spec);
    service.runUntilDrained();

    // The watchdog cut both attempts; the job is quarantined, the
    // sweep (and this test) did not hang.
    EXPECT_EQ(service.stats().poisoned, 1u);
    EXPECT_EQ(service.stats().retries, 1u);

    SpoolJob poisoned = service.spool().read(JobState::Poisoned, id);
    EXPECT_NE(poisoned.lastError.find("watchdog timeout"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Cache gate
// ---------------------------------------------------------------------

TEST(ServiceCacheGate, RepeatedSweepIsServedFromTheCache)
{
    SweepSpec sweep;
    sweep.name = "repeat";
    sweep.workloads = {"sieve"};
    sweep.cpuModels = {"Atomic"};
    sweep.cores = {1, 2};
    sweep.l2KB = {0, 256};
    sweep.workloadScale = 0.1;

    std::string dir = freshSpool("cache_gate");
    {
        SweepService service(testConfig(dir));
        service.submitSweep(sweep);
        service.runUntilDrained();
        EXPECT_EQ(service.stats().completed, 4u);
        EXPECT_EQ(service.stats().cacheServed, 0u);
    }

    // A fresh daemon on the same spool: the repeat sweep must be
    // >= 90% cache-served — here it is 100%, with zero dispatches.
    SweepService service(testConfig(dir));
    service.submitSweep(sweep);
    service.runUntilDrained();

    EXPECT_EQ(service.stats().completed, 4u);
    EXPECT_EQ(service.stats().cacheServed, 4u);
    EXPECT_EQ(service.stats().dispatched, 0u);
    // Every serve was a verified read.
    EXPECT_EQ(service.cache().stats().hits, 4u);
    EXPECT_EQ(service.cache().stats().corruptEvicted, 0u);
}

/** Complete @p spec once in a fresh spool @p dir; return the entry's
 *  bytes. */
std::string
completeOnce(const std::string &dir, const JobSpec &spec)
{
    SweepService service(testConfig(dir));
    EXPECT_NE(service.submit(spec), 0u);
    service.runUntilDrained();
    EXPECT_EQ(service.stats().completed, 1u);
    return slurp(service.cache().entryPath(spec));
}

/** Corrupt the entry via @p damage, then prove a fresh service
 *  evicts it, recomputes, and restores the exact original bytes. */
void
expectEvictAndRecompute(const std::string &tag,
                        const std::function<void(
                            const std::string &path)> &damage)
{
    std::string dir = freshSpool(tag);
    JobSpec spec = quickSpec();
    std::string good = completeOnce(dir, spec);
    ASSERT_FALSE(good.empty());

    ServiceConfig config = testConfig(dir);
    std::string path = ResultCache(dir + "/results",
                                   config.binaryVersion)
                           .entryPath(spec);
    damage(path);

    SweepService service(config);
    service.submit(spec);
    service.runUntilDrained();

    EXPECT_EQ(service.cache().stats().corruptEvicted, 1u);
    EXPECT_EQ(service.stats().cacheServed, 0u);
    EXPECT_EQ(service.stats().dispatched, 1u);
    EXPECT_EQ(service.stats().completed, 1u);
    // The recomputed entry is byte-identical to the original.
    EXPECT_EQ(slurp(path), good);
}

TEST(ServiceCacheGate, TruncatedEntryIsEvictedAndRecomputed)
{
    expectEvictAndRecompute("trunc", [](const std::string &path) {
        std::string bytes = slurp(path);
        spit(path, bytes.substr(0, bytes.size() / 2));
    });
}

TEST(ServiceCacheGate, FlippedByteIsEvictedAndRecomputed)
{
    expectEvictAndRecompute("flip", [](const std::string &path) {
        std::string bytes = slurp(path);
        ASSERT_GT(bytes.size(), 10u);
        bytes[bytes.size() / 2] ^= 0x01;
        spit(path, bytes);
    });
}

TEST(ServiceCacheGate, StaleBinaryVersionIsEvictedAndRecomputed)
{
    std::string dir = freshSpool("stale");
    JobSpec spec = quickSpec();
    std::string old_entry = completeOnce(dir, spec);
    ASSERT_FALSE(old_entry.empty());

    // The same spool under a newer build: the old entry must not be
    // served, even though its checksum is intact.
    ServiceConfig config = testConfig(dir);
    config.binaryVersion = "test-v2";
    SweepService service(config);
    service.submit(spec);
    service.runUntilDrained();

    EXPECT_EQ(service.cache().stats().staleEvicted, 1u);
    EXPECT_EQ(service.stats().cacheServed, 0u);
    EXPECT_EQ(service.stats().completed, 1u);
    std::string new_entry = slurp(service.cache().entryPath(spec));
    EXPECT_NE(new_entry, old_entry); // carries the new version tag
    EXPECT_FALSE(new_entry.empty());
}

// ---------------------------------------------------------------------
// Resumability
// ---------------------------------------------------------------------

/** A resumable guest-kind job spec (full-scale sieve so the run is
 *  long enough to cross several checkpoint periods). */
JobSpec
resumableSpec()
{
    JobSpec spec;
    spec.workload = "sieve";
    spec.cpuModel = os::CpuModel::Atomic;
    spec.resume = true;
    return spec;
}

/** Run @p spec's guest partially (to @p tick_limit) with
 *  auto-checkpoints of @p period into @p scratch. */
void
partialGuestRun(const JobSpec &spec, Tick period, Tick tick_limit,
                const std::string &scratch)
{
    fs::create_directories(scratch);
    auto workload = workloads::Registry::instance().create(
        spec.workload, spec.workloadScale);
    sim::Simulator simulator("system");
    os::SystemConfig sys_cfg;
    sys_cfg.cpuModel = spec.cpuModel;
    sys_cfg.numCpus = spec.cores;
    os::System system(simulator, sys_cfg, *workload);

    sim::RunOptions options;
    options.autoCheckpointPeriod = period;
    options.autoCheckpointPrefix = scratch + "/auto";
    auto result = system.run(options, tick_limit);
    ASSERT_EQ(result.cause, sim::ExitCause::TickLimit);
}

std::size_t
checkpointCount(const std::string &scratch)
{
    std::size_t n = 0;
    for (const auto &entry : fs::directory_iterator(scratch))
        n += entry.path().extension() == ".ckpt";
    return n;
}

TEST(ServiceResume, ContinuesFromCheckpointAndSkipsCorruptOnes)
{
    std::string dir = freshSpool("resume");
    JobSpec spec = resumableSpec();
    SpoolJob job;
    job.id = 1;
    job.spec = spec;

    // Discover the run length, then checkpoint every T/5 ticks.
    Tick total = 0;
    {
        auto workload = workloads::Registry::instance().create(
            spec.workload, spec.workloadScale);
        sim::Simulator simulator("system");
        os::SystemConfig sys_cfg;
        sys_cfg.cpuModel = spec.cpuModel;
        os::System system(simulator, sys_cfg, *workload);
        auto result = system.run();
        ASSERT_EQ(result.cause, sim::ExitCause::Finished);
        total = result.tick;
    }
    ServiceConfig config = testConfig(dir);
    config.autoCheckpointPeriod = total / 5;

    // Reference: the same resumable job, never interrupted.
    std::string scratch_ref = dir + "/scratch_ref";
    fs::create_directories(scratch_ref);
    JobOutcome ref = runSpooledJob(job, config, scratch_ref);
    ASSERT_TRUE(ref.success);
    EXPECT_FALSE(ref.resumed);
    ASSERT_NE(ref.result.statsDigest, 0u);
    ASSERT_NE(ref.result.memDigest, 0u);

    // "Killed" mid-run: a partial run leaves checkpoints behind; the
    // next attempt must continue from the newest one.
    std::string scratch_b = dir + "/scratch_b";
    partialGuestRun(spec, total / 5, total / 2, scratch_b);
    ASSERT_GE(checkpointCount(scratch_b), 2u);

    JobOutcome resumed = runSpooledJob(job, config, scratch_b);
    ASSERT_TRUE(resumed.success);
    EXPECT_TRUE(resumed.resumed);
    // Bit-identical to the uninterrupted run (the PR 2/3 restore
    // guarantee, now carried through the service).
    EXPECT_EQ(resumed.result.statsDigest, ref.result.statsDigest);
    EXPECT_EQ(resumed.result.memDigest, ref.result.memDigest);
    EXPECT_EQ(resumed.result.guestResult, ref.result.guestResult);
    EXPECT_EQ(resumed.result.guestInsts, ref.result.guestInsts);
    EXPECT_EQ(resumed.result.simTicks, ref.result.simTicks);

    // Corrupt the newest checkpoint: the attempt must fall back to
    // an older valid one, evict the corrupt file, and still land on
    // identical digests.
    std::string scratch_c = dir + "/scratch_c";
    partialGuestRun(spec, total / 5, total / 2, scratch_c);
    std::string newest;
    std::uint64_t newest_tick = 0;
    for (const auto &entry : fs::directory_iterator(scratch_c)) {
        std::string name = entry.path().filename().string();
        if (entry.path().extension() != ".ckpt")
            continue;
        std::uint64_t tick =
            std::stoull(name.substr(5, name.size() - 10));
        if (tick >= newest_tick) {
            newest_tick = tick;
            newest = entry.path().string();
        }
    }
    ASSERT_FALSE(newest.empty());
    spit(newest, slurp(newest).substr(0, 100)); // truncate it

    JobOutcome fallback = runSpooledJob(job, config, scratch_c);
    ASSERT_TRUE(fallback.success);
    EXPECT_TRUE(fallback.resumed);
    EXPECT_EQ(fallback.result.statsDigest, ref.result.statsDigest);
    EXPECT_EQ(fallback.result.memDigest, ref.result.memDigest);
    // The torn artifact was evicted; the resumed run's own
    // auto-checkpointing may have re-written a fresh checkpoint at
    // the same tick, so the path may exist again — but never with
    // the truncated bytes.
    if (fs::exists(newest)) {
        EXPECT_GT(fs::file_size(newest), 100u);
        EXPECT_NO_THROW(sim::CheckpointIn::readFile(newest));
    }
}

TEST(ServiceResume, ServiceCountsResumedJobs)
{
    std::string dir = freshSpool("resume_svc");
    JobSpec spec = resumableSpec();

    Tick total = 0;
    {
        auto workload = workloads::Registry::instance().create(
            spec.workload, spec.workloadScale);
        sim::Simulator simulator("system");
        os::SystemConfig sys_cfg;
        sys_cfg.cpuModel = spec.cpuModel;
        os::System system(simulator, sys_cfg, *workload);
        total = system.run().tick;
    }
    ServiceConfig config = testConfig(dir);
    config.autoCheckpointPeriod = total / 5;

    SweepService service(config);
    // Pre-seed the first job's scratch with a dead daemon's
    // checkpoints (ids are assigned in submission order, so the
    // first submit gets id 1).
    partialGuestRun(spec, total / 5, total / 2,
                    service.spool().scratchDir(1));
    std::uint64_t id = service.submit(spec);
    ASSERT_EQ(id, 1u);
    service.runUntilDrained();

    EXPECT_EQ(service.stats().completed, 1u);
    EXPECT_EQ(service.stats().resumedFromCheckpoint, 1u);
    EXPECT_EQ(service.spool().count(JobState::Done), 1u);
}

// ---------------------------------------------------------------------
// Admission control and the incoming drop-box
// ---------------------------------------------------------------------

TEST(ServiceAdmission, BoundedQueueShedsByPriority)
{
    std::string dir = freshSpool("admission");
    ServiceConfig config = testConfig(dir);
    config.queueBound = 2;
    SweepService service(config);

    JobSpec low = quickSpec(); // priority 0
    JobSpec high = quickSpec();
    high.priority = 5;

    std::uint64_t id1 = service.submit(low);
    std::uint64_t id2 = service.submit(low);
    EXPECT_NE(id1, 0u);
    EXPECT_NE(id2, 0u);

    // Queue full, equal priority: the newcomer is refused.
    EXPECT_EQ(service.submit(low), 0u);
    EXPECT_EQ(service.stats().rejected, 1u);

    // A higher-priority job sheds the youngest lowest-priority one.
    std::uint64_t id4 = service.submit(high);
    EXPECT_NE(id4, 0u);
    EXPECT_EQ(service.stats().shed, 1u);

    std::vector<SpoolJob> queued =
        service.spool().list(JobState::Queued);
    ASSERT_EQ(queued.size(), 2u);
    EXPECT_EQ(queued[0].id, id1); // oldest low-priority survives
    EXPECT_EQ(queued[1].id, id4);
    EXPECT_EQ(queued[1].spec.priority, 5);
}

TEST(ServiceIncoming, DropBoxAdmitsGoodSpecsAndQuarantinesBad)
{
    std::string dir = freshSpool("incoming");
    SweepService service(testConfig(dir));
    std::string incoming = service.spool().incomingDir();

    // A well-formed two-job sweep, dropped the way g5p_sweep does.
    sim::CheckpointIo::current().writeText(incoming + "/a.json", R"({
        "name": "drop",
        "workloads": ["sieve"],
        "cores": [1, 2],
        "workload_scale": 0.1
    })");
    // A torn/garbage spec must not wedge the daemon.
    spit(incoming + "/b.json", "{ this is not json");
    // Non-spec files are ignored.
    spit(incoming + "/notes.txt", "leave me alone");

    EXPECT_EQ(service.pollIncoming(), 2u);
    EXPECT_EQ(service.spool().count(JobState::Queued), 2u);
    EXPECT_FALSE(fs::exists(incoming + "/a.json"));
    EXPECT_TRUE(fs::exists(incoming + "/b.json.bad"));
    EXPECT_TRUE(fs::exists(incoming + "/notes.txt"));

    // Re-polling neither re-admits nor re-trips on the quarantined
    // spec.
    EXPECT_EQ(service.pollIncoming(), 0u);
    EXPECT_EQ(service.spool().count(JobState::Queued), 2u);
}

TEST(ServiceStop, RequestStopHaltsSchedulingButKeepsSpoolDurable)
{
    std::string dir = freshSpool("stop");
    SweepService service(testConfig(dir));
    service.submit(quickSpec());
    service.requestStop();
    service.runUntilDrained(); // returns immediately
    EXPECT_EQ(service.stats().dispatched, 0u);
    EXPECT_EQ(service.spool().count(JobState::Queued), 1u);

    // A restart picks the work right back up.
    SweepService restarted(testConfig(dir));
    restarted.runUntilDrained();
    EXPECT_EQ(restarted.stats().completed, 1u);
}

} // namespace
