/**
 * @file
 * Timing memory-path optimization round (PR 10) verification:
 *
 *  - AddrTable (the open-addressed snoop-filter/MSHR index) fuzzed
 *    against std::unordered_map, with clustered keys to force long
 *    probe chains and the backward-shift deletion path;
 *  - PacketPool unit behavior: block reuse, outstanding/high-water
 *    accounting, heap-mode (disabled) equivalence;
 *  - pool-vs-heap byte identity over the PR 7 coherence stress
 *    matrix (4 seeds x {2,4} cores x {Atomic,Timing}): disabling the
 *    pool must change nothing but the allocator;
 *  - checkpoint/restore mid-flight while pooled packets are live:
 *    the drain must return every packet to the pool before
 *    serialization, and the restored run must replay exactly;
 *  - teardown drain: outstanding() returns to baseline after every
 *    System lifetime (the Simulator asserts this too — these tests
 *    double as a harness for that assert).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/addr_table.hh"
#include "mem/mem_tester.hh"
#include "mem/packet.hh"
#include "mem/packet_pool.hh"
#include "os/system.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::os;

namespace
{

// ---------------------------------------------------------------
// AddrTable vs unordered_map fuzz
// ---------------------------------------------------------------

/** Deterministic 64-bit LCG (Knuth). */
struct Lcg
{
    std::uint64_t s;
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 11;
    }
};

TEST(AddrTable, MatchesUnorderedMapUnderFuzz)
{
    // Line addresses from a small clustered space: multiples of 64
    // in a 512-line window, so a 64-slot initial table sees heavy
    // collisions, growth, and erase inside probe clusters.
    mem::AddrTable<std::uint32_t> table(64);
    std::unordered_map<Addr, std::uint32_t> model;
    Lcg rng{12345};

    for (int op = 0; op < 200000; ++op) {
        Addr addr = (rng.next() % 512) * 64;
        switch (rng.next() % 4) {
          case 0:
          case 1: { // insert-or-update
            std::uint32_t v = (std::uint32_t)rng.next();
            table.refOrInsert(addr) = v;
            model[addr] = v;
            break;
          }
          case 2: // erase (often mid-cluster)
            table.erase(addr);
            model.erase(addr);
            break;
          default: // lookup + contains
            auto it = model.find(addr);
            std::uint32_t expect =
                it == model.end() ? 0xdeadbeef : it->second;
            EXPECT_EQ(table.lookup(addr, 0xdeadbeef), expect);
            EXPECT_EQ(table.contains(addr), it != model.end());
            break;
        }
        ASSERT_EQ(table.size(), model.size());
    }

    // Full-content sweep via forEach.
    std::unordered_map<Addr, std::uint32_t> dumped;
    table.forEach([&](Addr a, std::uint32_t v) { dumped[a] = v; });
    EXPECT_EQ(dumped, model);
}

TEST(AddrTable, EraseShiftsClustersBack)
{
    // Deleting the head of a probe cluster must leave the rest of
    // the cluster reachable (backward-shift, not tombstones): craft
    // keys that all hash near each other by brute-force searching
    // for same-home addresses, then erase in insertion order.
    mem::AddrTable<int> table(64);
    std::vector<Addr> cluster;
    // With 64 slots there are only 64 homes; 6*64 candidates are
    // plenty to find 8 sharing one.
    std::unordered_map<std::uint64_t, std::vector<Addr>> byHome;
    for (Addr a = 0; a < 64 * 6 * 64; a += 64) {
        // The table's own hash (Fibonacci multiply, top bits).
        std::uint64_t home = (a * 0x9e3779b97f4a7c15ull) >> 32 & 63;
        byHome[home].push_back(a);
        if (byHome[home].size() >= 8) {
            cluster = byHome[home];
            break;
        }
    }
    ASSERT_GE(cluster.size(), 8u);

    for (std::size_t i = 0; i < cluster.size(); ++i)
        table.refOrInsert(cluster[i]) = (int)i;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
        table.erase(cluster[i]);
        for (std::size_t j = i + 1; j < cluster.size(); ++j)
            ASSERT_EQ(table.lookup(cluster[j], -1), (int)j)
                << "entry lost after erasing cluster head " << i;
    }
    EXPECT_EQ(table.size(), 0u);
}

TEST(AddrTable, GrowthPreservesContents)
{
    mem::AddrTable<std::uint32_t> table(64);
    for (Addr a = 0; a < 4096; ++a)
        table.refOrInsert(a * 64) = (std::uint32_t)a;
    EXPECT_EQ(table.size(), 4096u);
    EXPECT_GE(table.capacity(), 4096u);
    for (Addr a = 0; a < 4096; ++a)
        ASSERT_EQ(table.lookup(a * 64, 0xffffffff), a);
}

// ---------------------------------------------------------------
// PacketPool unit behavior
// ---------------------------------------------------------------

TEST(PacketPool, ReusesBlocksAndTracksHighWater)
{
    ASSERT_TRUE(mem::PacketPool::enabled());
    std::size_t base = mem::PacketPool::outstanding();
    mem::PacketPool::resetHighWater();

    auto *a = new mem::Packet(mem::MemCmd::ReadReq, 0x40, 8);
    auto *b = new mem::Packet(mem::MemCmd::ReadReq, 0x80, 8);
    EXPECT_EQ(mem::PacketPool::outstanding(), base + 2);
    EXPECT_GE(mem::PacketPool::highWater(), base + 2);

    void *addr_b = b;
    delete b;
    EXPECT_EQ(mem::PacketPool::outstanding(), base + 1);
    // LIFO free list: the very next allocation reuses b's block.
    auto *c = new mem::Packet(mem::MemCmd::WriteReq, 0xc0, 8);
    EXPECT_EQ((void *)c, addr_b);
    delete c;
    delete a;
    EXPECT_EQ(mem::PacketPool::outstanding(), base);
    // High water survives the frees until explicitly reset.
    EXPECT_GE(mem::PacketPool::highWater(), base + 2);
    mem::PacketPool::resetHighWater();
    EXPECT_EQ(mem::PacketPool::highWater(), base);
}

TEST(PacketPool, DisabledModeIsPlainHeap)
{
    ASSERT_EQ(mem::PacketPool::outstanding(), 0u)
        << "previous test leaked packets";
    mem::PacketPool::setEnabled(false);
    auto *p = new mem::Packet(mem::MemCmd::ReadReq, 0x100, 8);
    // Outstanding accounting works identically in heap mode: the
    // Simulator's drain assert stays armed for the reference legs.
    EXPECT_EQ(mem::PacketPool::outstanding(), 1u);
    delete p;
    EXPECT_EQ(mem::PacketPool::outstanding(), 0u);
    mem::PacketPool::setEnabled(true);
    EXPECT_TRUE(mem::PacketPool::enabled());
}

// ---------------------------------------------------------------
// Pool-vs-heap byte identity over the PR 7 stress matrix
// ---------------------------------------------------------------

std::string
stressDump(std::uint64_t seed, unsigned cores, bool atomic)
{
    sim::Simulator sim("tester");
    mem::MemTesterParams p;
    p.numCores = cores;
    p.seed = seed;
    p.atomicMode = atomic;
    p.opsPerCore = 800;
    mem::MemTester tester(sim, "mt", p);
    sim::SimResult res = sim.run();
    EXPECT_EQ(res.cause, sim::ExitCause::Finished);
    EXPECT_TRUE(tester.violations().empty());
    std::ostringstream os;
    sim.dumpStats(os);
    return os.str();
}

struct PoolIdentityCase
{
    std::uint64_t seed;
    unsigned cores;
    bool atomic;
};

class PoolVsHeap : public ::testing::TestWithParam<PoolIdentityCase>
{};

TEST_P(PoolVsHeap, ByteIdenticalStats)
{
    auto c = GetParam();
    ASSERT_EQ(mem::PacketPool::outstanding(), 0u);
    std::string pooled = stressDump(c.seed, c.cores, c.atomic);
    mem::PacketPool::setEnabled(false);
    std::string heap = stressDump(c.seed, c.cores, c.atomic);
    mem::PacketPool::setEnabled(true);
    EXPECT_EQ(pooled, heap)
        << "allocator choice leaked into simulated behavior";
}

std::vector<PoolIdentityCase>
poolCases()
{
    std::vector<PoolIdentityCase> cases;
    for (std::uint64_t seed : {1, 2, 3, 4})
        for (unsigned cores : {2u, 4u})
            for (bool atomic : {false, true})
                cases.push_back({seed, cores, atomic});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PoolVsHeap, ::testing::ValuesIn(poolCases()),
    [](const auto &info) {
        std::ostringstream os;
        os << "seed" << info.param.seed << "_" << info.param.cores
           << "core_" << (info.param.atomic ? "Atomic" : "Timing");
        return os.str();
    });

// ---------------------------------------------------------------
// Checkpoint/restore mid-flight with pooled packets live
// ---------------------------------------------------------------

struct GuestArtifacts
{
    std::string stats;
    std::uint64_t result = 0;
    std::uint64_t insts = 0;
    std::uint64_t memDigest = 0;
    Tick finalTick = 0;
};

GuestArtifacts
finishGuest(sim::Simulator &sim, System &system)
{
    auto res = system.run();
    EXPECT_EQ(res.cause, sim::ExitCause::Finished);
    GuestArtifacts a;
    std::ostringstream stats;
    sim.dumpStats(stats);
    a.stats = stats.str();
    a.result = system.result();
    a.insts = system.totalInsts();
    a.memDigest = system.physmem().contentDigest();
    a.finalTick = res.tick;
    return a;
}

SystemConfig
timingCfg(unsigned cores)
{
    SystemConfig cfg;
    cfg.cpuModel = CpuModel::Timing;
    cfg.numCpus = cores;
    return cfg;
}

TEST(PooledCheckpoint, MidFlightRestoreReplaysExactly)
{
    ASSERT_TRUE(mem::PacketPool::enabled());
    auto &reg = workloads::Registry::instance();
    std::string path = ::testing::TempDir() + "/g5p_pooled.ckpt";

    // Reference: uninterrupted 2-core Timing run (packets pooled).
    GuestArtifacts ref;
    {
        sim::Simulator sim("system");
        auto wl = reg.create("radix_threads", 0.1);
        System system(sim, timingCfg(2), *wl);
        ref = finishGuest(sim, system);
    }
    ASSERT_GT(ref.finalTick, 0u);

    // Checkpoint mid-run: the drain must park or retire every pooled
    // packet (Cache::serialize asserts no MSHRs in flight; the
    // Simulator asserts outstanding() == 0 at the boundary).
    {
        sim::Simulator sim("system");
        auto wl = reg.create("radix_threads", 0.1);
        System system(sim, timingCfg(2), *wl);
        auto part = system.run(ref.finalTick / 2);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
        ASSERT_FALSE(system.allHalted())
            << "workload too short to checkpoint mid-run";
        sim.checkpoint(path);
        GuestArtifacts cont = finishGuest(sim, system);
        EXPECT_EQ(ref.stats, cont.stats);
        EXPECT_EQ(ref.result, cont.result);
        EXPECT_EQ(ref.memDigest, cont.memDigest);
    }

    // Restore into a fresh machine; everything must replay.
    {
        sim::Simulator sim("system");
        auto wl = reg.create("radix_threads", 0.1);
        System system(sim, timingCfg(2), *wl);
        sim.restore(path);
        GuestArtifacts rest = finishGuest(sim, system);
        EXPECT_EQ(ref.stats, rest.stats);
        EXPECT_EQ(ref.result, rest.result);
        EXPECT_EQ(ref.insts, rest.insts);
        EXPECT_EQ(ref.finalTick, rest.finalTick);
        EXPECT_EQ(ref.memDigest, rest.memDigest);
    }
    std::remove(path.c_str());
    EXPECT_EQ(mem::PacketPool::outstanding(), 0u);
}

// ---------------------------------------------------------------
// Teardown drain
// ---------------------------------------------------------------

TEST(PoolDrain, EverySystemLifetimeReturnsToBaseline)
{
    auto &reg = workloads::Registry::instance();
    for (CpuModel model : {CpuModel::Timing, CpuModel::O3}) {
        ASSERT_EQ(mem::PacketPool::outstanding(), 0u);
        {
            sim::Simulator sim("system");
            auto wl = reg.create("water_nsquared", 0.1);
            SystemConfig cfg;
            cfg.cpuModel = model;
            cfg.maxInstsPerCpu = 2000;
            System system(sim, cfg, *wl);
            system.run();
            // In-scope: transient packets may be parked on events.
        }
        // Past the Simulator's own TransientDrainGuard: if a packet
        // had leaked, the assert inside teardown would have fired
        // before we got here. Belt and braces:
        EXPECT_EQ(mem::PacketPool::outstanding(), 0u)
            << "leak after " << cpuModelName(model) << " teardown";
    }
}

} // namespace
