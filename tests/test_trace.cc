/**
 * @file
 * Tests for the trace/coupling layer: function registry, recorder
 * dispatch, code layout determinism, and the synthesizer's stream
 * invariants.
 */

#include <gtest/gtest.h>

#include "trace/code_layout.hh"
#include "trace/recorder.hh"
#include "trace/synthesizer.hh"

using namespace g5p;
using namespace g5p::trace;

namespace
{

/** Records raw callbacks for assertions. */
class CapturingConsumer : public TraceConsumer
{
  public:
    std::vector<std::pair<char, FuncId>> scopeEvents;
    std::vector<HostAddr> dataAddrs;

    void funcEnter(FuncId id) override
    { scopeEvents.push_back({'>', id}); }
    void funcExit(FuncId id) override
    { scopeEvents.push_back({'<', id}); }
    void dataRef(HostAddr addr, std::uint32_t, bool) override
    { dataAddrs.push_back(addr); }
};

/** Counts ops and validates stream invariants. */
class CheckingSink : public HostInstSink
{
  public:
    std::uint64_t ops = 0;
    std::uint64_t branches = 0;
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    bool sawBadBranch = false;

    void
    op(const HostOp &op) override
    {
        ++ops;
        switch (op.kind) {
          case HostOp::Kind::Branch:
            ++branches;
            if (op.isCall)
                ++calls;
            if (op.isReturn)
                ++returns;
            if (op.taken && op.target == 0 && !op.isReturn)
                sawBadBranch = true;
            break;
          case HostOp::Kind::Load:
            ++loads;
            break;
          case HostOp::Kind::Store:
            ++stores;
            break;
          default:
            break;
        }
    }
};

} // namespace

TEST(FuncRegistry, LookupIsIdempotent)
{
    auto &reg = FuncRegistry::instance();
    FuncId a = reg.lookup("Test::f1", FuncKind::Util);
    FuncId b = reg.lookup("Test::f1", FuncKind::Util);
    EXPECT_EQ(a, b);
    EXPECT_EQ(reg.info(a).name, "Test::f1");
    EXPECT_EQ(reg.info(a).kind, FuncKind::Util);
}

TEST(FuncRegistry, KeyedSpecializationsAreDistinct)
{
    auto &reg = FuncRegistry::instance();
    FuncId a = reg.lookupKeyed("Test::exec", FuncKind::InstExecute, 1);
    FuncId b = reg.lookupKeyed("Test::exec", FuncKind::InstExecute, 2);
    FuncId a2 =
        reg.lookupKeyed("Test::exec", FuncKind::InstExecute, 1);
    EXPECT_NE(a, b);
    EXPECT_EQ(a, a2);
}

TEST(FuncRegistry, KindNamesComplete)
{
    for (unsigned k = 0; k < (unsigned)FuncKind::NumKinds; ++k)
        EXPECT_STRNE(funcKindName((FuncKind)k), "Unknown");
}

TEST(Recorder, DispatchesToConsumers)
{
    auto &reg = FuncRegistry::instance();
    FuncId f = reg.lookup("Test::dispatch", FuncKind::Util);

    CapturingConsumer consumer;
    Recorder rec;
    rec.addConsumer(&consumer);
    rec.activate();
    {
        ScopeGuard guard(f);
        recordData(0x1234, 8, true);
    }
    rec.deactivate();

    ASSERT_EQ(consumer.scopeEvents.size(), 2u);
    EXPECT_EQ(consumer.scopeEvents[0], std::make_pair('>', f));
    EXPECT_EQ(consumer.scopeEvents[1], std::make_pair('<', f));
    ASSERT_EQ(consumer.dataAddrs.size(), 1u);
    EXPECT_EQ(consumer.dataAddrs[0], 0x1234u);
}

TEST(Recorder, InactiveRecorderSeesNothing)
{
    auto &reg = FuncRegistry::instance();
    FuncId f = reg.lookup("Test::inactive", FuncKind::Util);

    CapturingConsumer consumer;
    Recorder rec;
    rec.addConsumer(&consumer);
    // never activated
    {
        ScopeGuard guard(f);
        recordData(0x1, 8, false);
    }
    EXPECT_TRUE(consumer.scopeEvents.empty());
    EXPECT_TRUE(consumer.dataAddrs.empty());
}

TEST(Recorder, HeapAllocCyclesArena)
{
    CapturingConsumer consumer;
    Recorder rec;
    rec.addConsumer(&consumer);
    rec.activate();
    for (int i = 0; i < 100; ++i)
        recordHeapAlloc(64);
    rec.deactivate();

    ASSERT_EQ(consumer.dataAddrs.size(), 100u);
    for (HostAddr a : consumer.dataAddrs) {
        EXPECT_GE(a, Recorder::heapBase);
        EXPECT_LT(a, Recorder::heapBase + Recorder::heapSpan);
    }
    // Consecutive allocations land on distinct chunks.
    EXPECT_NE(consumer.dataAddrs[0], consumer.dataAddrs[1]);
}

TEST(DataSpace, AllocationsAlignedAndDisjoint)
{
    auto &space = DataSpace::instance();
    HostAddr a = space.alloc(100);
    HostAddr b = space.alloc(1);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(CodeLayout, SizesDeterministicByName)
{
    auto &reg = FuncRegistry::instance();
    FuncId f = reg.lookup("Test::sized", FuncKind::MemAccess);

    CodeLayout l1(reg), l2(reg);
    EXPECT_EQ(l1.code(f).sizeBytes, l2.code(f).sizeBytes);
    EXPECT_EQ(l1.code(f).executedBytes, l2.code(f).executedBytes);
    EXPECT_GT(l1.code(f).sizeBytes, 0u);
    EXPECT_LE(l1.code(f).executedBytes, l1.code(f).sizeBytes);
}

TEST(CodeLayout, SizeScaleShrinksCode)
{
    auto &reg = FuncRegistry::instance();
    FuncId f = reg.lookup("Test::o3scaled", FuncKind::CpuDetailed);

    CodeLayout base(reg);
    LayoutOptions opts;
    opts.sizeScale = 0.5;
    CodeLayout scaled(reg, opts);
    EXPECT_LT(scaled.code(f).sizeBytes, base.code(f).sizeBytes);
}

TEST(CodeLayout, FunctionsDoNotOverlap)
{
    auto &reg = FuncRegistry::instance();
    CodeLayout layout(reg);
    FuncId a = reg.lookup("Test::olA", FuncKind::Util);
    FuncId b = reg.lookup("Test::olB", FuncKind::Util);
    // Copies: code() inserts lazily and may invalidate prior refs.
    const auto ca = layout.code(a);
    const auto cb = layout.code(b);
    // Whichever was placed first must end before the other begins.
    if (ca.addr < cb.addr)
        EXPECT_LE(ca.addr + ca.sizeBytes, cb.addr);
    else
        EXPECT_LE(cb.addr + cb.sizeBytes, ca.addr);
}

TEST(CodeLayout, ChildFuncsStableAndDistinct)
{
    auto &reg = FuncRegistry::instance();
    CodeLayout layout(reg);
    FuncId parent = reg.lookup("Test::parent", FuncKind::EventHandler);
    FuncId c0 = layout.childFunc(parent, 0);
    FuncId c1 = layout.childFunc(parent, 1);
    EXPECT_NE(c0, c1);
    EXPECT_EQ(layout.childFunc(parent, 0), c0);
    EXPECT_NE(c0, parent);
    EXPECT_NE(reg.info(c0).name.find("::part0"), std::string::npos);
}

TEST(Synthesizer, BalancedStreamEmitsCallsAndReturns)
{
    auto &reg = FuncRegistry::instance();
    FuncId outer = reg.lookup("Test::outer", FuncKind::EventHandler);
    FuncId inner = reg.lookup("Test::inner", FuncKind::MemAccess);

    CodeLayout layout(reg);
    CheckingSink sink;
    Synthesizer synth(layout, sink, 42);

    synth.funcEnter(outer);
    for (int i = 0; i < 50; ++i) {
        synth.funcEnter(inner);
        synth.dataRef(0x2000'0000 + i * 64, 8, i % 2);
        synth.funcExit(inner);
    }
    synth.funcExit(outer);
    synth.flush();

    EXPECT_EQ(synth.depth(), 0u);
    EXPECT_GT(sink.ops, 200u);
    EXPECT_GE(sink.calls, 50u);    // at least the real scopes
    EXPECT_EQ(sink.calls + 1, sink.returns); // outer had no caller
    EXPECT_GE(sink.loads + sink.stores, 50u);
    EXPECT_FALSE(sink.sawBadBranch);
    EXPECT_EQ(sink.ops, synth.opsEmitted());
}

TEST(Synthesizer, DeterministicForSeed)
{
    auto &reg = FuncRegistry::instance();
    FuncId f = reg.lookup("Test::det", FuncKind::CpuSimple);

    auto run = [&](std::uint64_t seed) {
        CodeLayout layout(reg);
        CheckingSink sink;
        Synthesizer synth(layout, sink, seed);
        for (int i = 0; i < 100; ++i) {
            synth.funcEnter(f);
            synth.funcExit(f);
        }
        synth.flush();
        return sink.ops;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST(Synthesizer, WorkScaleShrinksStream)
{
    auto &reg = FuncRegistry::instance();
    FuncId f = reg.lookup("Test::ws", FuncKind::CpuSimple);

    auto run = [&](double scale) {
        CodeLayout layout(reg);
        CheckingSink sink;
        Synthesizer synth(layout, sink, 3, scale);
        for (int i = 0; i < 300; ++i) {
            synth.funcEnter(f);
            synth.funcExit(f);
        }
        synth.flush();
        return sink.ops;
    };
    auto base = run(1.0);
    auto small = run(0.7);
    EXPECT_LT(small, base);
    // Scaling compounds down the synthetic call tree, so the stream
    // shrinks faster than linearly; just bound it away from zero.
    EXPECT_GT(small, base / 4);
}

TEST(Synthesizer, SelfOpsAttributeTime)
{
    auto &reg = FuncRegistry::instance();
    FuncId hot = reg.lookup("Test::hot", FuncKind::CpuSimple);
    FuncId cold = reg.lookup("Test::cold", FuncKind::CpuSimple);

    CodeLayout layout(reg);
    CheckingSink sink;
    Synthesizer synth(layout, sink, 5);
    for (int i = 0; i < 90; ++i) {
        synth.funcEnter(hot);
        synth.funcExit(hot);
    }
    synth.funcEnter(cold);
    synth.funcExit(cold);

    const auto &self = synth.selfOps();
    ASSERT_GT(self.size(), std::max(hot, cold));
    EXPECT_GT(self[hot], self[cold]);
}

TEST(Synthesizer, PreActivationExitsAreTolerated)
{
    auto &reg = FuncRegistry::instance();
    FuncId f = reg.lookup("Test::preact", FuncKind::Util);
    CodeLayout layout(reg);
    CheckingSink sink;
    Synthesizer synth(layout, sink, 1);

    // An exit without a matching enter (scope opened before the
    // recorder was activated) must be ignored, not crash.
    synth.funcExit(f);
    synth.dataRef(0x1000, 8, false);
    EXPECT_EQ(sink.ops, 0u);
}
