/**
 * @file
 * Unit tests for the discrete-event queue — ordering, priorities,
 * (de/re)scheduling, time advance, and the simulator loop driver.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"
#include "sim/clocked_object.hh"
#include "sim/sim_object.hh"
#include "sim/simulator.hh"

using namespace g5p;
using namespace g5p::sim;

namespace
{

/** Event that appends a token to a log when it fires. */
class LogEvent : public Event
{
  public:
    LogEvent(std::vector<int> &log, int token,
             Priority prio = DefaultPri)
        : Event(prio), log_(log), token_(token)
    {}

    void process() override { log_.push_back(token_); }

  private:
    std::vector<int> &log_;
    int token_;
};

} // namespace

TEST(EventQueue, ServicesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2), e3(log, 3);
    eq.schedule(&e2, 200);
    eq.schedule(&e1, 100);
    eq.schedule(&e3, 300);

    eq.serviceUntil(maxTick - 1);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SameTickOrderedByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent low(log, 1, Event::SimExitPri);
    LogEvent first(log, 2, Event::DefaultPri);
    LogEvent second(log, 3, Event::DefaultPri);
    LogEvent high(log, 4, Event::MinimumPri);

    eq.schedule(&low, 50);
    eq.schedule(&first, 50);
    eq.schedule(&second, 50);
    eq.schedule(&high, 50);
    eq.serviceUntil(100);

    EXPECT_EQ(log, (std::vector<int>{4, 2, 3, 1}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(&e1, 10);
    eq.schedule(&e2, 20);
    EXPECT_EQ(eq.size(), 2u);

    eq.deschedule(&e1);
    EXPECT_FALSE(e1.scheduled());
    EXPECT_EQ(eq.size(), 1u);

    eq.serviceUntil(100);
    EXPECT_EQ(log, std::vector<int>{2});
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(&e1, 10);
    eq.schedule(&e2, 20);
    eq.reschedule(&e1, 30); // now after e2

    eq.serviceUntil(100);
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, NextTickSkipsSquashed)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(&e1, 10);
    eq.schedule(&e2, 20);
    eq.deschedule(&e1);
    EXPECT_EQ(eq.nextTick(), 20u);
    eq.deschedule(&e2);
}

TEST(EventQueue, ServiceUntilRespectsLimit)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(&e1, 10);
    eq.schedule(&e2, 20);

    EXPECT_EQ(eq.serviceUntil(15), 1u);
    EXPECT_EQ(log, std::vector<int>{1});
    EXPECT_TRUE(e2.scheduled());
    eq.deschedule(&e2);
}

TEST(EventQueue, EventsCanRescheduleThemselves)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper tick(
        [&] {
            if (++count < 5)
                eq.schedule(&tick, eq.curTick() + 10);
        },
        "tick");
    eq.schedule(&tick, 0);
    eq.serviceUntil(maxTick - 1);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST(EventQueue, AutoDeleteEventRuns)
{
    EventQueue eq;
    int fired = 0;
    auto *ev = new EventFunctionWrapper([&] { ++fired; }, "once");
    ev->setAutoDelete(true);
    eq.schedule(ev, 5);
    eq.serviceUntil(10);
    EXPECT_EQ(fired, 1);
    // No leak: ASAN/valgrind-clean by construction.
}

TEST(EventQueue, CountsServicedAndScheduled)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1);
    eq.schedule(&e1, 1);
    eq.serviceUntil(2);
    eq.schedule(&e1, 3);
    eq.serviceUntil(4);
    EXPECT_EQ(eq.numScheduled(), 2u);
    EXPECT_EQ(eq.numServiced(), 2u);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(&e1, 100);
    eq.serviceUntil(200);
    EXPECT_DEATH(eq.schedule(&e2, 50), "in the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1);
    eq.schedule(&e1, 100);
    EXPECT_DEATH(eq.schedule(&e1, 200), "already scheduled");
    eq.deschedule(&e1);
}
#endif

TEST(Simulator, RunsToExitEvent)
{
    Simulator sim("system");
    sim.exitSimLoop("done", ExitCause::Finished, 500);
    SimResult result = sim.run();
    EXPECT_EQ(result.cause, ExitCause::Finished);
    EXPECT_EQ(result.tick, 500u);
    EXPECT_EQ(result.message, "done");
}

TEST(Simulator, EmptyQueueExit)
{
    Simulator sim("system");
    SimResult result = sim.run();
    EXPECT_EQ(result.cause, ExitCause::EventQueueEmpty);
}

TEST(Simulator, TickLimitStopsLoop)
{
    Simulator sim("system");
    sim.exitSimLoop("late", ExitCause::Finished, 1000);
    SimResult result = sim.run(100);
    EXPECT_EQ(result.cause, ExitCause::TickLimit);
    EXPECT_EQ(result.tick, 100u);
    // The exit event is still pending; continuing reaches it.
    result = sim.run();
    EXPECT_EQ(result.cause, ExitCause::Finished);
    EXPECT_EQ(result.tick, 1000u);
}

namespace
{

/** SimObject tracking its lifecycle phases. */
class PhaseObject : public SimObject
{
  public:
    PhaseObject(Simulator &sim, const std::string &name,
                std::vector<std::string> &log)
        : SimObject(sim, name), log_(log)
    {}

    void init() override { log_.push_back(name() + ".init"); }
    void startup() override { log_.push_back(name() + ".startup"); }
    void regStats() override { log_.push_back(name() + ".regStats"); }

  private:
    std::vector<std::string> &log_;
};

} // namespace

TEST(Simulator, LifecyclePhasesInOrder)
{
    Simulator sim("system");
    std::vector<std::string> log;
    PhaseObject a(sim, "a", log);
    PhaseObject b(sim, "b", log);
    sim.run();
    EXPECT_EQ(log, (std::vector<std::string>{
        "a.init", "b.init", "a.regStats", "b.regStats",
        "a.startup", "b.startup"}));

    // Phases run once even across repeated run() calls.
    sim.run();
    EXPECT_EQ(log.size(), 6u);
}

TEST(ClockedObject, ClockArithmetic)
{
    Simulator sim("system");
    ClockDomain domain = ClockDomain::fromMHz(2000); // 500 ticks
    EXPECT_EQ(domain.period(), 500u);

    class Obj : public ClockedObject
    {
      public:
        using ClockedObject::ClockedObject;
    } obj(sim, "obj", domain);

    EXPECT_EQ(obj.cyclesToTicks(3), 1500u);
    EXPECT_EQ(obj.ticksToCycles(1500), 3u);
    EXPECT_EQ(obj.ticksToCycles(1501), 4u);
    // At tick 0, the edge is now.
    EXPECT_EQ(obj.clockEdge(), 0u);
    EXPECT_EQ(obj.clockEdge(2), 1000u);
}

TEST(EventQueue, DescheduledEventMayBeDestroyedImmediately)
{
    // A descheduled event's heap entry must never be dereferenced,
    // even if the event is freed right away (regression test for
    // the lazy-squash dangling-pointer hazard).
    EventQueue eq;
    std::vector<int> log;
    auto *transient = new LogEvent(log, 1);
    LogEvent keeper(log, 2);
    eq.schedule(transient, 10);
    eq.schedule(&keeper, 20);
    eq.deschedule(transient);
    delete transient; // entry for it is still in the heap

    EXPECT_EQ(eq.nextTick(), 20u); // purge walks past the dead entry
    eq.serviceUntil(100);
    EXPECT_EQ(log, std::vector<int>{2});
}

TEST(EventQueue, HeavyDescheduleChurnStaysBounded)
{
    // Millions of schedule/deschedule pairs with no servicing must
    // not accumulate heap entries (compaction kicks in).
    EventQueue eq;
    std::vector<int> log;
    LogEvent far_event(log, 1);
    eq.schedule(&far_event, 1'000'000);

    LogEvent probe(log, 2);
    for (Tick t = 1; t < 200'000; ++t) {
        eq.schedule(&probe, t);
        eq.deschedule(&probe);
    }
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq.nextTick(), 1'000'000u);
    eq.deschedule(&far_event);
}
