/**
 * @file
 * Unit tests for the discrete-event queue — ordering, priorities,
 * (de/re)scheduling, time advance, and the simulator loop driver.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <queue>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/eventq.hh"
#include "sim/clocked_object.hh"
#include "sim/sim_object.hh"
#include "sim/simulator.hh"

using namespace g5p;
using namespace g5p::sim;

namespace
{

/** Event that appends a token to a log when it fires. */
class LogEvent : public Event
{
  public:
    LogEvent(std::vector<int> &log, int token,
             Priority prio = DefaultPri)
        : Event(prio), log_(log), token_(token)
    {}

    void process() override { log_.push_back(token_); }

  private:
    std::vector<int> &log_;
    int token_;
};

} // namespace

TEST(EventQueue, ServicesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2), e3(log, 3);
    eq.schedule(e2, 200);
    eq.schedule(e1, 100);
    eq.schedule(e3, 300);

    eq.serviceUntil(maxTick - 1);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SameTickOrderedByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent low(log, 1, Event::SimExitPri);
    LogEvent first(log, 2, Event::DefaultPri);
    LogEvent second(log, 3, Event::DefaultPri);
    LogEvent high(log, 4, Event::MinimumPri);

    eq.schedule(low, 50);
    eq.schedule(first, 50);
    eq.schedule(second, 50);
    eq.schedule(high, 50);
    eq.serviceUntil(100);

    EXPECT_EQ(log, (std::vector<int>{4, 2, 3, 1}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(e1, 10);
    eq.schedule(e2, 20);
    EXPECT_EQ(eq.size(), 2u);

    eq.deschedule(e1);
    EXPECT_FALSE(e1.scheduled());
    EXPECT_EQ(eq.size(), 1u);

    eq.serviceUntil(100);
    EXPECT_EQ(log, std::vector<int>{2});
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(e1, 10);
    eq.schedule(e2, 20);
    eq.reschedule(e1, 30); // now after e2

    eq.serviceUntil(100);
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, NextTickSkipsSquashed)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(e1, 10);
    eq.schedule(e2, 20);
    eq.deschedule(e1);
    EXPECT_EQ(eq.nextTick(), 20u);
    eq.deschedule(e2);
}

TEST(EventQueue, ServiceUntilRespectsLimit)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(e1, 10);
    eq.schedule(e2, 20);

    EXPECT_EQ(eq.serviceUntil(15), 1u);
    EXPECT_EQ(log, std::vector<int>{1});
    EXPECT_TRUE(e2.scheduled());
    eq.deschedule(e2);
}

TEST(EventQueue, EventsCanRescheduleThemselves)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper tick(
        [&] {
            if (++count < 5)
                eq.schedule(tick, eq.curTick() + 10);
        },
        "tick");
    eq.schedule(tick, 0);
    eq.serviceUntil(maxTick - 1);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST(EventQueue, AutoDeleteEventRuns)
{
    EventQueue eq;
    int fired = 0;
    auto *ev = new EventFunctionWrapper([&] { ++fired; }, "once");
    ev->setAutoDelete(true);
    eq.schedule(*ev, 5);
    eq.serviceUntil(10);
    EXPECT_EQ(fired, 1);
    // No leak: ASAN/valgrind-clean by construction.
}

TEST(EventQueue, DeprecatedPointerSpellingsStillForward)
{
    // PR 9 collapsed the two scheduling spellings; the pointer forms
    // survive as deprecated thin forwarders for out-of-tree callers.
    // This is the one place they are exercised on purpose.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&b, 15);
    eq.deschedule(&a);
    eq.serviceUntil(100);
    EXPECT_EQ(log, (std::vector<int>{2}));
#pragma GCC diagnostic pop
}

TEST(EventQueue, CountsServicedAndScheduled)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1);
    eq.schedule(e1, 1);
    eq.serviceUntil(2);
    eq.schedule(e1, 3);
    eq.serviceUntil(4);
    EXPECT_EQ(eq.numScheduled(), 2u);
    EXPECT_EQ(eq.numServiced(), 2u);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(e1, 100);
    eq.serviceUntil(200);
    EXPECT_DEATH(eq.schedule(e2, 50), "in the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1);
    eq.schedule(e1, 100);
    EXPECT_DEATH(eq.schedule(e1, 200), "already scheduled");
    eq.deschedule(e1);
}
#endif

TEST(Simulator, RunsToExitEvent)
{
    Simulator sim("system");
    sim.exitSimLoop("done", ExitCause::Finished, 500);
    SimResult result = sim.run();
    EXPECT_EQ(result.cause, ExitCause::Finished);
    EXPECT_EQ(result.tick, 500u);
    EXPECT_EQ(result.message, "done");
}

TEST(Simulator, EmptyQueueExit)
{
    Simulator sim("system");
    SimResult result = sim.run();
    EXPECT_EQ(result.cause, ExitCause::EventQueueEmpty);
}

TEST(Simulator, TickLimitStopsLoop)
{
    Simulator sim("system");
    sim.exitSimLoop("late", ExitCause::Finished, 1000);
    SimResult result = sim.run(100);
    EXPECT_EQ(result.cause, ExitCause::TickLimit);
    EXPECT_EQ(result.tick, 100u);
    // The exit event is still pending; continuing reaches it.
    result = sim.run();
    EXPECT_EQ(result.cause, ExitCause::Finished);
    EXPECT_EQ(result.tick, 1000u);
}

namespace
{

/** SimObject tracking its lifecycle phases. */
class PhaseObject : public SimObject
{
  public:
    PhaseObject(Simulator &sim, const std::string &name,
                std::vector<std::string> &log)
        : SimObject(sim, name), log_(log)
    {}

    void init() override { log_.push_back(name() + ".init"); }
    void startup() override { log_.push_back(name() + ".startup"); }
    void regStats() override { log_.push_back(name() + ".regStats"); }

  private:
    std::vector<std::string> &log_;
};

} // namespace

TEST(Simulator, LifecyclePhasesInOrder)
{
    Simulator sim("system");
    std::vector<std::string> log;
    PhaseObject a(sim, "a", log);
    PhaseObject b(sim, "b", log);
    sim.run();
    EXPECT_EQ(log, (std::vector<std::string>{
        "a.init", "b.init", "a.regStats", "b.regStats",
        "a.startup", "b.startup"}));

    // Phases run once even across repeated run() calls.
    sim.run();
    EXPECT_EQ(log.size(), 6u);
}

TEST(ClockedObject, ClockArithmetic)
{
    Simulator sim("system");
    ClockDomain domain = ClockDomain::fromMHz(2000); // 500 ticks
    EXPECT_EQ(domain.period(), 500u);

    class Obj : public ClockedObject
    {
      public:
        using ClockedObject::ClockedObject;
    } obj(sim, "obj", domain);

    EXPECT_EQ(obj.cyclesToTicks(3), 1500u);
    EXPECT_EQ(obj.ticksToCycles(1500), 3u);
    EXPECT_EQ(obj.ticksToCycles(1501), 4u);
    // At tick 0, the edge is now.
    EXPECT_EQ(obj.clockEdge(), 0u);
    EXPECT_EQ(obj.clockEdge(2), 1000u);
}

TEST(EventQueue, DescheduledEventMayBeDestroyedImmediately)
{
    // A descheduled event's heap entry must never be dereferenced,
    // even if the event is freed right away (regression test for
    // the lazy-squash dangling-pointer hazard).
    EventQueue eq;
    std::vector<int> log;
    auto *transient = new LogEvent(log, 1);
    LogEvent keeper(log, 2);
    eq.schedule(*transient, 10);
    eq.schedule(keeper, 20);
    eq.deschedule(*transient);
    delete transient; // entry for it is still in the heap

    EXPECT_EQ(eq.nextTick(), 20u); // purge walks past the dead entry
    eq.serviceUntil(100);
    EXPECT_EQ(log, std::vector<int>{2});
}

namespace
{

/**
 * Reference model of the *seed* event queue: a lazily-purged binary
 * heap over (when, priority, sequence) keys with a dead-sequence set.
 * The indexed-heap implementation must reproduce its service order
 * bit for bit.
 */
class RefModel
{
  public:
    std::uint64_t
    schedule(int token, Tick when, std::int16_t prio)
    {
        std::uint64_t seq = nextSeq_++;
        heap_.push(Entry{when, prio, seq, token});
        return seq;
    }

    void deschedule(std::uint64_t seq) { dead_.insert(seq); }

    /** Pop the next live entry; false if none remain. */
    bool
    serviceOne(int &token, Tick &when)
    {
        while (!heap_.empty() && dead_.count(heap_.top().seq)) {
            dead_.erase(heap_.top().seq);
            heap_.pop();
        }
        if (heap_.empty())
            return false;
        token = heap_.top().token;
        when = heap_.top().when;
        heap_.pop();
        return true;
    }

  private:
    struct Entry
    {
        Tick when;
        std::int16_t prio;
        std::uint64_t seq;
        int token;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>,
                        std::greater<Entry>> heap_;
    std::unordered_set<std::uint64_t> dead_;
    std::uint64_t nextSeq_ = 0;
};

/** LogEvent recording (token, tick) service pairs. */
class TracedEvent : public Event
{
  public:
    TracedEvent(std::vector<std::pair<int, Tick>> &log, int token,
                EventQueue &eq, Priority prio = DefaultPri)
        : Event(prio), log_(log), token_(token), eq_(eq)
    {}

    void process() override { log_.push_back({token_, eq_.curTick()}); }

  private:
    std::vector<std::pair<int, Tick>> &log_;
    int token_;
    EventQueue &eq_;
};

} // namespace

TEST(EventQueue, StressMatchesReferenceModel)
{
    // 10k events under random schedule/deschedule/reschedule churn
    // interleaved with servicing; the final service order must match
    // the reference model of the seed implementation exactly.
    constexpr int numEvents = 10000;
    std::mt19937_64 rng(0xe7e9'7151ULL);

    EventQueue eq;
    RefModel ref;
    std::vector<std::pair<int, Tick>> log;

    std::vector<std::unique_ptr<TracedEvent>> events;
    std::vector<std::uint64_t> refSeq(numEvents, 0);
    std::vector<bool> live(numEvents, false);
    const std::int16_t prios[] = {Event::MinimumPri, Event::DefaultPri,
                                  Event::CacheRespPri,
                                  Event::SimExitPri};
    for (int i = 0; i < numEvents; ++i) {
        events.push_back(std::make_unique<TracedEvent>(
            log, i, eq,
            (Event::Priority)prios[rng() % std::size(prios)]));
    }

    auto randWhen = [&] { return eq.curTick() + rng() % 1000; };

    for (int op = 0; op < 60000; ++op) {
        int i = (int)(rng() % numEvents);
        switch (rng() % 8) {
          case 0: case 1: case 2:
            if (!live[i]) {
                Tick when = randWhen();
                refSeq[i] = ref.schedule(i, when,
                                         events[i]->priority());
                eq.schedule(*events[i], when);
                live[i] = true;
            }
            break;
          case 3:
            if (live[i]) {
                ref.deschedule(refSeq[i]);
                eq.deschedule(*events[i]);
                live[i] = false;
            }
            break;
          case 4: case 5:
            if (live[i]) {
                Tick when = randWhen();
                ref.deschedule(refSeq[i]);
                refSeq[i] = ref.schedule(i, when,
                                         events[i]->priority());
                eq.reschedule(*events[i], when);
            }
            break;
          default:
            // Service a small batch through both models.
            for (int n = 0; n < 3 && !eq.empty(); ++n) {
                int token = -1;
                Tick when = 0;
                ASSERT_TRUE(ref.serviceOne(token, when));
                eq.serviceOne();
                ASSERT_FALSE(log.empty());
                EXPECT_EQ(log.back().first, token);
                EXPECT_EQ(log.back().second, when);
                live[token] = false;
            }
            break;
        }
        ASSERT_EQ(eq.size(),
                  (std::size_t)std::count(live.begin(), live.end(),
                                          true));
    }

    // Drain both sides and compare the tail order.
    while (!eq.empty()) {
        int token = -1;
        Tick when = 0;
        ASSERT_TRUE(ref.serviceOne(token, when));
        eq.serviceOne();
        EXPECT_EQ(log.back().first, token);
        EXPECT_EQ(log.back().second, when);
    }
    int token = -1;
    Tick when = 0;
    EXPECT_FALSE(ref.serviceOne(token, when));
}

TEST(EventQueue, DeterminismReplayMatchesSeedOrdering)
{
    // Replay a fixed recorded schedule — (token, when, priority)
    // triples with interleaved deschedules and reschedules — and
    // assert the serviced sequence is bit-identical to the seed
    // implementation's (when, priority, FIFO) order.
    struct Op { char kind; int token; Tick when; std::int16_t prio; };
    const Op script[] = {
        {'s', 0, 100, Event::DefaultPri},
        {'s', 1, 100, Event::DefaultPri},   // FIFO tie with 0
        {'s', 2, 100, Event::MinimumPri},   // wins the tick
        {'s', 3, 50, Event::SimExitPri},
        {'s', 4, 50, Event::DefaultPri},
        {'r', 0, 100, Event::DefaultPri},   // 0 now ties AFTER 1
        {'s', 5, 75, Event::DefaultPri},
        {'d', 4, 0, 0},
        {'s', 6, 75, Event::DefaultPri},    // after 5
        {'r', 3, 60, Event::SimExitPri},
        {'s', 7, 60, Event::DefaultPri},    // beats 3 on priority
        {'s', 8, 100, Event::MaximumPri},
        {'d', 5, 0, 0},
        {'r', 6, 100, Event::DefaultPri},   // ties after 0
    };

    EventQueue eq;
    RefModel ref;
    std::vector<std::pair<int, Tick>> log;
    std::unordered_map<int, std::unique_ptr<TracedEvent>> events;
    std::unordered_map<int, std::uint64_t> refSeq;

    for (const Op &op : script) {
        if (op.kind == 's') {
            events[op.token] = std::make_unique<TracedEvent>(
                log, op.token, eq, (Event::Priority)op.prio);
            refSeq[op.token] = ref.schedule(op.token, op.when,
                                            op.prio);
            eq.schedule(*events[op.token], op.when);
        } else if (op.kind == 'd') {
            ref.deschedule(refSeq[op.token]);
            eq.deschedule(*events[op.token]);
        } else {
            ref.deschedule(refSeq[op.token]);
            refSeq[op.token] = ref.schedule(
                op.token, op.when, events[op.token]->priority());
            eq.reschedule(*events[op.token], op.when);
        }
    }

    std::vector<std::pair<int, Tick>> expected;
    int token = -1;
    Tick when = 0;
    while (ref.serviceOne(token, when))
        expected.push_back({token, when});

    eq.serviceUntil(maxTick - 1);
    EXPECT_EQ(log, expected);
    // The recorded seed order, spelled out: (when, priority, FIFO).
    EXPECT_EQ(log, (std::vector<std::pair<int, Tick>>{
        {7, 60}, {3, 60}, {2, 100}, {1, 100}, {0, 100}, {6, 100},
        {8, 100}}));
}

TEST(EventQueue, RescheduleMovesEventToBackOfTie)
{
    // A reschedule behaves like deschedule+schedule for FIFO ties:
    // the event is re-sequenced behind events already at that key.
    EventQueue eq;
    std::vector<int> log;
    LogEvent e1(log, 1), e2(log, 2);
    eq.schedule(e1, 10);
    eq.schedule(e2, 10);
    eq.reschedule(e1, 10);
    eq.serviceUntil(20);
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

namespace
{

/** Event counting destructor calls (auto-delete coverage). */
class CountedEvent : public Event
{
  public:
    explicit CountedEvent(int &destroyed) : destroyed_(destroyed)
    {
        setAutoDelete(true);
    }

    ~CountedEvent() override { ++destroyed_; }

    void process() override {}

  private:
    int &destroyed_;
};

} // namespace

TEST(EventQueue, DestructorReleasesAutoDeleteEvents)
{
    int destroyed = 0;
    std::vector<int> log;
    auto keeper = std::make_unique<LogEvent>(log, 1);
    {
        EventQueue eq;
        for (int i = 0; i < 8; ++i)
            eq.schedule(*new CountedEvent(destroyed), 10 + i);
        eq.schedule(*keeper, 50);
        EXPECT_EQ(eq.size(), 9u);
        // Queue dies with pending events: auto-delete events are
        // freed, non-owned events are released unscheduled.
    }
    EXPECT_EQ(destroyed, 8);
    EXPECT_FALSE(keeper->scheduled()); // destructor will not assert
}

TEST(EventPool, RecyclesBlocksThroughFreeList)
{
    std::size_t slabs_before = sim::EventPool::slabsAllocated();
    std::size_t outstanding_before = sim::EventPool::outstanding();
    for (int round = 0; round < 1000; ++round) {
        auto *ev = new EventFunctionWrapper([] {}, "pooled");
        delete ev;
    }
    // Steady-state churn reuses one block; at most one slab grown.
    EXPECT_LE(sim::EventPool::slabsAllocated(), slabs_before + 1);
    EXPECT_EQ(sim::EventPool::outstanding(), outstanding_before);
}

TEST(EventQueue, HeavyDescheduleChurnStaysBounded)
{
    // Millions of schedule/deschedule pairs with no servicing must
    // not accumulate heap entries (compaction kicks in).
    EventQueue eq;
    std::vector<int> log;
    LogEvent far_event(log, 1);
    eq.schedule(far_event, 1'000'000);

    LogEvent probe(log, 2);
    for (Tick t = 1; t < 200'000; ++t) {
        eq.schedule(probe, t);
        eq.deschedule(probe);
    }
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq.nextTick(), 1'000'000u);
    eq.deschedule(far_event);
}
