/**
 * @file
 * Workload tests: every registered kernel must produce its golden
 * checksum on every CPU model, in both modes, at several CPU counts —
 * the strongest cross-cutting property the guest side has.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/sim_error.hh"
#include "os/system.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::os;
using namespace g5p::workloads;

namespace
{

constexpr double testScale = 0.12; // keep runs fast

std::uint64_t
runWorkload(const std::string &name, CpuModel model, SimMode mode,
            unsigned cpus)
{
    sim::Simulator sim("system");
    auto wl = Registry::instance().create(name, testScale);
    SystemConfig cfg;
    cfg.cpuModel = model;
    cfg.mode = mode;
    cfg.numCpus = cpus;
    System system(sim, cfg, *wl);
    auto res = system.run(5'000'000'000'000ULL);
    EXPECT_EQ(res.cause, sim::ExitCause::Finished)
        << name << " on " << cpuModelName(model);
    return system.result();
}

} // namespace

TEST(Registry, KnowsAllPaperWorkloads)
{
    auto names = Registry::instance().names();
    for (const auto &needed : Registry::parsecSplashNames()) {
        EXPECT_NE(std::find(names.begin(), names.end(), needed),
                  names.end())
            << "missing " << needed;
    }
    EXPECT_NE(std::find(names.begin(), names.end(), "sieve"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "boot-exit"),
              names.end());
    EXPECT_EQ(Registry::parsecSplashNames().size(), 9u);
}

TEST(Registry, UnknownWorkloadThrowsTyped)
{
    try {
        Registry::instance().create("no-such-workload");
        FAIL() << "expected WorkloadError";
    } catch (const WorkloadError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown workload"),
                  std::string::npos) << e.what();
    }
}

TEST(Workloads, GoldenModelsAreNontrivial)
{
    for (const auto &name : Registry::instance().names()) {
        auto wl = Registry::instance().create(name, testScale);
        EXPECT_NE(wl->expectedResult(1), 0u)
            << name << " should define a golden checksum";
        EXPECT_EQ(wl->name(), name);
    }
}

TEST(Workloads, PartitionCoversAllWork)
{
    // partitionOf must tile [0, total) exactly for any CPU count.
    for (unsigned cpus : {1u, 2u, 3u, 4u, 7u, 16u}) {
        std::uint64_t covered = 0;
        std::uint64_t prev_end = 0;
        for (unsigned c = 0; c < cpus; ++c) {
            auto [start, end] =
                WorkloadBase::partitionOf(1000, cpus, c);
            EXPECT_EQ(start, prev_end);
            covered += end - start;
            prev_end = end;
        }
        EXPECT_EQ(covered, 1000u);
        EXPECT_EQ(prev_end, 1000u);
    }
}

/** The big sweep: workload x CPU model, SE mode, 1 CPU. */
class WorkloadOnModel
    : public ::testing::TestWithParam<
          std::tuple<std::string, CpuModel>>
{};

TEST_P(WorkloadOnModel, ChecksumMatchesGolden)
{
    auto [name, model] = GetParam();
    auto wl = Registry::instance().create(name, testScale);
    std::uint64_t expected = wl->expectedResult(1);
    EXPECT_EQ(runWorkload(name, model, SimMode::SE, 1), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadOnModel,
    ::testing::Combine(
        ::testing::Values("canneal", "blackscholes", "dedup",
                          "streamcluster", "water_nsquared",
                          "water_spatial", "ocean_cp", "ocean_ncp",
                          "fmm", "sieve", "boot-exit"),
        ::testing::Values(CpuModel::Atomic, CpuModel::Timing,
                          CpuModel::Minor, CpuModel::O3)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + "_" +
               cpuModelName(std::get<1>(info.param));
    });

/** Multi-CPU + FS-mode correctness on a representative subset. */
class WorkloadModes
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadModes, FourCpusAndFsAgree)
{
    const std::string &name = GetParam();
    auto wl = Registry::instance().create(name, testScale);
    std::uint64_t expected = wl->expectedResult(4);
    EXPECT_EQ(runWorkload(name, CpuModel::Atomic, SimMode::SE, 4),
              expected);
    EXPECT_EQ(runWorkload(name, CpuModel::Timing, SimMode::FS, 4),
              expected);
}

INSTANTIATE_TEST_SUITE_P(
    Subset, WorkloadModes,
    ::testing::Values("canneal", "blackscholes", "ocean_cp", "fmm"));

TEST(Workloads, ScaleChangesWorkSize)
{
    auto small = Registry::instance().create("sieve", 0.1);
    auto large = Registry::instance().create("sieve", 1.0);
    // Different limits produce different prime counts.
    EXPECT_NE(small->expectedResult(1), large->expectedResult(1));
}

TEST(Workloads, DeterministicAcrossRuns)
{
    auto a = runWorkload("canneal", CpuModel::Atomic, SimMode::SE, 1);
    auto b = runWorkload("canneal", CpuModel::Atomic, SimMode::SE, 1);
    EXPECT_EQ(a, b);
}
