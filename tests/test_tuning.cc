/**
 * @file
 * Tests for the §V-A tuning models: huge pages (THP/EHP), the -O3
 * build, and frequency scaling.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "tuning/dvfs.hh"
#include "tuning/hugepages.hh"
#include "tuning/optflag.hh"

using namespace g5p;
using namespace g5p::core;
using namespace g5p::tuning;

namespace
{

RunConfig
o3Config()
{
    RunConfig cfg;
    cfg.workload = "water_nsquared";
    cfg.workloadScale = 0.3;
    cfg.cpuModel = os::CpuModel::O3;
    cfg.platform = host::xeonConfig();
    return cfg;
}

} // namespace

TEST(HugePages, ModesSetDistinctFlags)
{
    TuningConfig t;
    applyHugePages(t, HugePageMode::Thp);
    EXPECT_TRUE(t.thpCode);
    EXPECT_FALSE(t.ehpCode);
    applyHugePages(t, HugePageMode::Ehp);
    EXPECT_TRUE(t.ehpCode);
    EXPECT_FALSE(t.thpCode);
    applyHugePages(t, HugePageMode::None);
    EXPECT_FALSE(t.thpCode | t.ehpCode);
}

TEST(HugePages, ThpCutsItlbMisses)
{
    RunConfig cfg = o3Config();
    RunResult base = runProfiledSimulation(cfg);

    applyHugePages(cfg.tuning, HugePageMode::Thp);
    RunResult thp = runProfiledSimulation(cfg);

    // Fig. 11: THP reduces iTLB overhead dramatically (~63% in the
    // paper) without changing the instruction stream.
    EXPECT_EQ(thp.hostInsts, base.hostInsts);
    EXPECT_LT(thp.counters.itlbMisses,
              base.counters.itlbMisses * 0.7);
    // And the run gets (at least slightly) faster: Fig. 10.
    EXPECT_GE(speedupOver(base, thp), 1.0);
}

TEST(HugePages, EhpCoversAtLeastAsMuchAsThp)
{
    RunConfig cfg = o3Config();
    applyHugePages(cfg.tuning, HugePageMode::Thp);
    RunResult thp = runProfiledSimulation(cfg);
    applyHugePages(cfg.tuning, HugePageMode::Ehp);
    RunResult ehp = runProfiledSimulation(cfg);
    EXPECT_LE(ehp.counters.itlbMisses, thp.counters.itlbMisses);
}

TEST(HugePages, BenefitGrowsWithDetail)
{
    // Fig. 10: simple CPUs gain little, detailed CPUs gain more.
    RunConfig cfg = o3Config();
    cfg.cpuModel = os::CpuModel::Atomic;
    RunResult atomic_base = runProfiledSimulation(cfg);
    applyHugePages(cfg.tuning, HugePageMode::Thp);
    RunResult atomic_thp = runProfiledSimulation(cfg);

    cfg = o3Config();
    RunResult o3_base = runProfiledSimulation(cfg);
    applyHugePages(cfg.tuning, HugePageMode::Thp);
    RunResult o3_thp = runProfiledSimulation(cfg);

    double atomic_gain = speedupOver(atomic_base, atomic_thp);
    double o3_gain = speedupOver(o3_base, o3_thp);
    EXPECT_GE(o3_gain, atomic_gain - 0.002);
}

TEST(OptFlag, ShrinksBinaryAndInstructionCount)
{
    RunConfig cfg = o3Config();
    RunResult base = runProfiledSimulation(cfg);
    applyO3(cfg.tuning);
    RunResult opt = runProfiledSimulation(cfg);

    EXPECT_LT(opt.codeBytes, base.codeBytes);
    EXPECT_LT(opt.hostInsts, base.hostInsts);
    // The speedup is small, possibly negative for some workloads
    // (Fig. 12) — just bound it.
    double pct = o3SpeedupPercent(base, opt);
    EXPECT_GT(pct, -8.0);
    EXPECT_LT(pct, 20.0);
}

TEST(Dvfs, SimTimeScalesRoughlyLinearly)
{
    // Fig. 13: 3.1 GHz -> 1.2 GHz gives ~2.67x the time (nearly
    // linear because DRAM traffic is negligible).
    RunConfig cfg = o3Config();
    cfg.cpuModel = os::CpuModel::Timing;
    RunResult base = runProfiledSimulation(cfg);

    applyFrequency(cfg.tuning, 1.2);
    RunResult slow = runProfiledSimulation(cfg);

    double ratio = normalizedTime(base, slow);
    EXPECT_GT(ratio, 2.2);
    EXPECT_LT(ratio, 3.0); // 3.1/1.2 = 2.58, paper saw 2.67
}

TEST(Dvfs, LadderIsDescending)
{
    auto ladder = xeonFrequencyLadderGHz();
    ASSERT_GE(ladder.size(), 3u);
    EXPECT_DOUBLE_EQ(ladder.front(), 3.1);
    for (std::size_t i = 1; i < ladder.size(); ++i)
        EXPECT_LT(ladder[i], ladder[i - 1]);
}

TEST(Dvfs, TurboBoostSpeedsUp)
{
    RunConfig cfg = o3Config();
    cfg.cpuModel = os::CpuModel::Atomic;
    RunResult base = runProfiledSimulation(cfg);
    applyTurbo(cfg.tuning);
    RunResult turbo = runProfiledSimulation(cfg);
    EXPECT_LT(turbo.hostSeconds, base.hostSeconds);
    // Bounded by the frequency ratio 4.1/3.1.
    EXPECT_LT(base.hostSeconds / turbo.hostSeconds, 4.1 / 3.1 + 0.01);
}
