/**
 * @file
 * Unit tests for checkpoint serialization (INI-style round trips).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/random.hh"
#include "sim/serialize.hh"

using namespace g5p::sim;

TEST(Serialize, ScalarRoundTrip)
{
    CheckpointOut out;
    out.pushSection("cpu");
    out.param("pc", 0x1234u);
    out.param("name", std::string("hello"));
    out.popSection();

    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("cpu");
    unsigned pc = 0;
    std::string name;
    in.param("pc", pc);
    in.param("name", name);
    EXPECT_EQ(pc, 0x1234u);
    EXPECT_EQ(name, "hello");
}

TEST(Serialize, VectorRoundTrip)
{
    CheckpointOut out;
    out.pushSection("regs");
    std::vector<std::uint64_t> values{1, 2, 3, 0xdeadbeef};
    out.paramVector("r", values);
    out.popSection();

    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("regs");
    std::vector<std::uint64_t> loaded;
    in.paramVector("r", loaded);
    EXPECT_EQ(loaded, values);
}

TEST(Serialize, NestedSections)
{
    CheckpointOut out;
    out.pushSection("system");
    out.pushSection("cpu0");
    out.param("x", 1);
    out.popSection();
    out.pushSection("cpu1");
    out.param("x", 2);
    out.popSection();
    out.popSection();

    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("system");
    in.pushSection("cpu0");
    int x = 0;
    in.param("x", x);
    EXPECT_EQ(x, 1);
    in.popSection();
    in.pushSection("cpu1");
    in.param("x", x);
    EXPECT_EQ(x, 2);
}

TEST(Serialize, HasDetectsPresence)
{
    CheckpointOut out;
    out.pushSection("s");
    out.param("present", 1);
    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("s");
    EXPECT_TRUE(in.has("present"));
    EXPECT_FALSE(in.has("absent"));
}

TEST(Serialize, FileRoundTrip)
{
    CheckpointOut out;
    out.pushSection("m");
    out.param("v", 77);
    std::string path = ::testing::TempDir() + "/g5p_ckpt_test.ini";
    out.writeFile(path);

    CheckpointIn in = CheckpointIn::readFile(path);
    in.pushSection("m");
    int v = 0;
    in.param("v", v);
    EXPECT_EQ(v, 77);
}

TEST(Serialize, EmptyVector)
{
    CheckpointOut out;
    out.pushSection("s");
    out.paramVector("empty", std::vector<int>{});
    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("s");
    std::vector<int> loaded{1, 2};
    in.paramVector("empty", loaded);
    EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, CommentsAndBlanksIgnored)
{
    CheckpointIn in = CheckpointIn::fromText(
        "# comment\n\n[sec]\nkey=42\n# more\n");
    in.pushSection("sec");
    int v = 0;
    in.param("key", v);
    EXPECT_EQ(v, 42);
}

TEST(Serialize, MissingKeyThrowsDescriptiveError)
{
    CheckpointIn in = CheckpointIn::fromText("[cpu0]\npc=16\n");
    in.pushSection("cpu0");
    std::uint64_t v = 0;
    try {
        in.param("nextSeq", v);
        FAIL() << "expected missing-key throw";
    } catch (const std::runtime_error &e) {
        // The message must name both the key and the section so a
        // failed restore is diagnosable from the exception alone.
        std::string msg = e.what();
        EXPECT_NE(msg.find("nextSeq"), std::string::npos) << msg;
        EXPECT_NE(msg.find("cpu0"), std::string::npos) << msg;
    }
}

TEST(Serialize, MissingSectionThrowsDescriptiveError)
{
    CheckpointIn in = CheckpointIn::fromText("[cpu0]\npc=16\n");
    in.pushSection("cpu7");
    std::uint64_t v = 0;
    try {
        in.param("pc", v);
        FAIL() << "expected missing-section throw";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("cpu7"), std::string::npos) << msg;
    }
}

TEST(Serialize, RestoreIntoNonEmptyOverwrites)
{
    // unserialize() must fully replace prior contents — restoring
    // into a machine that has already run is the normal case.
    CheckpointOut out;
    out.pushSection("regs");
    out.paramVector("r", std::vector<int>{7, 8});
    out.param("pc", 0x2000u);
    out.popSection();

    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("regs");
    std::vector<int> regs{1, 2, 3, 4, 5};
    unsigned pc = 0xffff;
    in.paramVector("r", regs);
    in.param("pc", pc);
    EXPECT_EQ(regs, (std::vector<int>{7, 8}));
    EXPECT_EQ(pc, 0x2000u);
}

namespace
{

/** Random string with the characters that stress the escaper. */
std::string
fuzzString(g5p::Rng &rng)
{
    static const std::string alphabet =
        "ab=#[]\\\n\r\t \"'%";
    std::string s;
    std::size_t len = rng.below(24);
    for (std::size_t i = 0; i < len; ++i) {
        if (rng.chance(0.1)) {
            s += "\xc3\xa9";   // é: multi-byte UTF-8 passes through
        } else {
            s += alphabet[rng.below(alphabet.size())];
        }
    }
    return s;
}

} // namespace

TEST(Serialize, RandomizedRoundTripProperty)
{
    // Property: any payload written through CheckpointOut comes back
    // unchanged through text serialization, however hostile the
    // bytes. Seeded, so a failure reproduces exactly.
    g5p::Rng rng(0xc0ffee);

    for (int round = 0; round < 50; ++round) {
        std::vector<std::string> strs;
        std::vector<std::int64_t> ints;
        std::vector<std::uint64_t> uints;
        std::vector<double> doubles;
        for (int i = 0; i < 8; ++i) {
            strs.push_back(fuzzString(rng));
            ints.push_back((std::int64_t)rng.next());
            uints.push_back(rng.next());
            doubles.push_back(
                (double)(std::int64_t)rng.next() / 3.0);
        }
        // Pin the known edge cases every round.
        strs.push_back("");
        strs.push_back("line1\nline2\r\n=#[tricky]");
        ints.push_back(std::numeric_limits<std::int64_t>::min());
        ints.push_back(std::numeric_limits<std::int64_t>::max());
        uints.push_back(std::numeric_limits<std::uint64_t>::max());
        uints.push_back(0);
        doubles.push_back(0.1);
        doubles.push_back(-0.0);

        CheckpointOut out;
        out.pushSection("fuzz");
        for (std::size_t i = 0; i < strs.size(); ++i)
            out.param("s" + std::to_string(i), strs[i]);
        out.paramVector("ints", ints);
        out.paramVector("uints", uints);
        out.paramVector("doubles", doubles);
        out.popSection();

        CheckpointIn in = CheckpointIn::fromText(out.toText());
        in.pushSection("fuzz");
        for (std::size_t i = 0; i < strs.size(); ++i) {
            std::string got;
            in.param("s" + std::to_string(i), got);
            EXPECT_EQ(strs[i], got)
                << "round " << round << " string " << i;
        }
        std::vector<std::int64_t> gi;
        std::vector<std::uint64_t> gu;
        std::vector<double> gd;
        in.paramVector("ints", gi);
        in.paramVector("uints", gu);
        in.paramVector("doubles", gd);
        EXPECT_EQ(ints, gi) << "round " << round;
        EXPECT_EQ(uints, gu) << "round " << round;
        EXPECT_EQ(doubles, gd) << "round " << round;
    }
}
