/**
 * @file
 * Unit tests for checkpoint serialization (INI-style round trips).
 */

#include <gtest/gtest.h>

#include "sim/serialize.hh"

using namespace g5p::sim;

TEST(Serialize, ScalarRoundTrip)
{
    CheckpointOut out;
    out.pushSection("cpu");
    out.param("pc", 0x1234u);
    out.param("name", std::string("hello"));
    out.popSection();

    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("cpu");
    unsigned pc = 0;
    std::string name;
    in.param("pc", pc);
    in.param("name", name);
    EXPECT_EQ(pc, 0x1234u);
    EXPECT_EQ(name, "hello");
}

TEST(Serialize, VectorRoundTrip)
{
    CheckpointOut out;
    out.pushSection("regs");
    std::vector<std::uint64_t> values{1, 2, 3, 0xdeadbeef};
    out.paramVector("r", values);
    out.popSection();

    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("regs");
    std::vector<std::uint64_t> loaded;
    in.paramVector("r", loaded);
    EXPECT_EQ(loaded, values);
}

TEST(Serialize, NestedSections)
{
    CheckpointOut out;
    out.pushSection("system");
    out.pushSection("cpu0");
    out.param("x", 1);
    out.popSection();
    out.pushSection("cpu1");
    out.param("x", 2);
    out.popSection();
    out.popSection();

    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("system");
    in.pushSection("cpu0");
    int x = 0;
    in.param("x", x);
    EXPECT_EQ(x, 1);
    in.popSection();
    in.pushSection("cpu1");
    in.param("x", x);
    EXPECT_EQ(x, 2);
}

TEST(Serialize, HasDetectsPresence)
{
    CheckpointOut out;
    out.pushSection("s");
    out.param("present", 1);
    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("s");
    EXPECT_TRUE(in.has("present"));
    EXPECT_FALSE(in.has("absent"));
}

TEST(Serialize, FileRoundTrip)
{
    CheckpointOut out;
    out.pushSection("m");
    out.param("v", 77);
    std::string path = ::testing::TempDir() + "/g5p_ckpt_test.ini";
    out.writeFile(path);

    CheckpointIn in = CheckpointIn::readFile(path);
    in.pushSection("m");
    int v = 0;
    in.param("v", v);
    EXPECT_EQ(v, 77);
}

TEST(Serialize, EmptyVector)
{
    CheckpointOut out;
    out.pushSection("s");
    out.paramVector("empty", std::vector<int>{});
    CheckpointIn in = CheckpointIn::fromText(out.toText());
    in.pushSection("s");
    std::vector<int> loaded{1, 2};
    in.paramVector("empty", loaded);
    EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, CommentsAndBlanksIgnored)
{
    CheckpointIn in = CheckpointIn::fromText(
        "# comment\n\n[sec]\nkey=42\n# more\n");
    in.pushSection("sec");
    int v = 0;
    in.param("key", v);
    EXPECT_EQ(v, 42);
}
