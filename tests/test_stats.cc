/**
 * @file
 * Unit tests for the gem5-style statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace g5p::sim::stats;

TEST(Stats, ScalarAccumulates)
{
    Scalar s;
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, VectorTotalAndReset)
{
    Vector v;
    v.init(3);
    v[0] = 1;
    v[2] = 4;
    EXPECT_DOUBLE_EQ(v.total(), 5.0);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(Stats, FormulaComputesOnDemand)
{
    Scalar hits, misses;
    Formula rate;
    rate.functor([&] {
        double t = hits.value() + misses.value();
        return t ? misses.value() / t : 0.0;
    });
    EXPECT_DOUBLE_EQ(rate.total(), 0.0);
    hits += 3;
    misses += 1;
    EXPECT_DOUBLE_EQ(rate.total(), 0.25);
}

TEST(Stats, GroupHierarchyPrefixes)
{
    Group root(nullptr, "system");
    Group cpu(&root, "cpu0");
    Group dcache(&cpu, "dcache");
    EXPECT_EQ(dcache.statPrefix(), "system.cpu0.dcache.");
}

TEST(Stats, DumpFormat)
{
    Group root(nullptr, "sys");
    Scalar s;
    root.addStat(&s, "count", "number of things");
    s += 7;

    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_EQ(os.str(), "sys.count 7 # number of things\n");
}

TEST(Stats, DumpRecursesIntoChildren)
{
    Group root(nullptr, "sys");
    Group child(&root, "cpu");
    Scalar a, b;
    root.addStat(&a, "a", "top");
    child.addStat(&b, "b", "nested");
    a += 1;
    b += 2;

    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_NE(os.str().find("sys.a 1"), std::string::npos);
    EXPECT_NE(os.str().find("sys.cpu.b 2"), std::string::npos);
}

TEST(Stats, VectorPrintsSubnames)
{
    Group root(nullptr, "g");
    Vector v;
    v.init(2);
    v.setSubnames({"read", "write"});
    root.addStat(&v, "ops", "operation counts");
    v[0] = 5;
    v[1] = 6;

    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_NE(os.str().find("g.ops::read 5"), std::string::npos);
    EXPECT_NE(os.str().find("g.ops::write 6"), std::string::npos);
}

TEST(Stats, ResetRecurses)
{
    Group root(nullptr, "sys");
    Group child(&root, "cpu");
    Scalar a, b;
    root.addStat(&a, "a", "");
    child.addStat(&b, "b", "");
    a += 1;
    b += 2;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, FindStatByDottedPath)
{
    Group root(nullptr, "sys");
    Group cpu(&root, "cpu");
    Scalar insts;
    cpu.addStat(&insts, "insts", "");
    insts += 9;

    const Info *found = root.findStat("cpu.insts");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->total(), 9.0);
    EXPECT_EQ(root.findStat("cpu.nope"), nullptr);
    EXPECT_EQ(root.findStat("gpu.insts"), nullptr);
}

TEST(Stats, ChildUnregistersOnDestruction)
{
    Group root(nullptr, "sys");
    {
        Group child(&root, "temp");
        EXPECT_EQ(root.childGroups().size(), 1u);
    }
    EXPECT_TRUE(root.childGroups().empty());
}
