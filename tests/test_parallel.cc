/**
 * @file
 * Parallel experiment harness: pooled sweeps must be byte-identical
 * to serial execution. The gate test (ParallelDeterminismGate) is the
 * acceptance check for the whole isolation refactor — every RunResult
 * field, doubles compared bit-for-bit, across all four CPU models.
 *
 * Beyond the executor itself, the machine-level tests run whole
 * simulators on raw threads (stats text + memory digest comparison,
 * checkpoint/restore mid-job) to prove the retired process-globals —
 * recorder, DataSpace, event pool, checkpoint I/O hook — really are
 * per-thread now.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <numeric>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "base/sim_error.hh"
#include "core/parallel.hh"
#include "isa/decoder.hh"
#include "os/system.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::core;

namespace
{

// ---------------------------------------------------------------
// Bitwise result signatures
// ---------------------------------------------------------------

void
putBits(std::ostringstream &os, double v)
{
    os << std::bit_cast<std::uint64_t>(v) << ',';
}

/**
 * Serialize every RunResult field, doubles as raw bit patterns, so
 * two results compare equal only if they are byte-identical. EXPECT
 * on the strings gives a readable first-divergence diff.
 */
std::string
resultSignature(const RunResult &r)
{
    std::ostringstream os;
    os << r.workload << '|' << r.platform << '|'
       << os::cpuModelName(r.cpuModel) << '|' << (int)r.mode << '|';

    const host::HostCounters &c = r.counters;
    os << c.insts << ',' << c.uops << ',' << c.loads << ','
       << c.stores << ',' << c.branches << ',';
    putBits(os, c.baseCycles);
    putBits(os, c.feLatIcacheCycles);
    putBits(os, c.feLatItlbCycles);
    putBits(os, c.feLatMispredictCycles);
    putBits(os, c.feLatUnknownCycles);
    putBits(os, c.feLatClearCycles);
    putBits(os, c.feBwMiteCycles);
    putBits(os, c.feBwDsbCycles);
    putBits(os, c.badSpecCycles);
    putBits(os, c.beMemCycles);
    putBits(os, c.beCoreCycles);
    os << c.icacheAccesses << ',' << c.icacheMisses << ','
       << c.dcacheAccesses << ',' << c.dcacheMisses << ','
       << c.itlbAccesses << ',' << c.itlbMisses << ','
       << c.dtlbAccesses << ',' << c.dtlbMisses << ','
       << c.l2Misses << ',' << c.llcMisses << ','
       << c.mispredicts << ',' << c.unknownBranches << ','
       << c.uopsFromDsb << ',' << c.uopsFromMite << ','
       << c.dramBytes << ',' << c.llcOccupancyBytes << '|';

    const host::TopdownBreakdown &t = r.topdown;
    putBits(os, t.retiring);
    putBits(os, t.badSpeculation);
    putBits(os, t.frontendLatency);
    putBits(os, t.frontendBandwidth);
    putBits(os, t.backendBound);
    putBits(os, t.feIcache);
    putBits(os, t.feItlb);
    putBits(os, t.feMispredictResteers);
    putBits(os, t.feUnknownBranches);
    putBits(os, t.feClearResteers);
    putBits(os, t.feMite);
    putBits(os, t.feDsb);
    putBits(os, t.beMemory);
    putBits(os, t.beCore);
    os << '|';

    putBits(os, r.hostSeconds);
    putBits(os, r.ipc);
    os << r.hostInsts << ',' << r.codeBytes << ',' << r.guestInsts
       << ',' << r.simTicks << ',' << r.guestResult << ','
       << r.resultChecked << ',' << r.resultOk << ','
       << r.distinctFunctions << '|';

    for (const HotFunction &f : r.functionCdf.ranked()) {
        os << f.name << ':' << f.selfOps << ':';
        putBits(os, f.share);
    }
    return os.str();
}

std::vector<std::string>
signatures(const std::vector<RunResult> &results)
{
    std::vector<std::string> sigs;
    sigs.reserve(results.size());
    for (const RunResult &r : results)
        sigs.push_back(resultSignature(r));
    return sigs;
}

// ---------------------------------------------------------------
// The reference sweep: every CPU model on two platforms
// ---------------------------------------------------------------

std::vector<RunConfig>
sweepConfigs()
{
    std::vector<RunConfig> configs;
    for (os::CpuModel model : os::allCpuModels) {
        for (int p = 0; p < 2; ++p) {
            RunConfig cfg;
            cfg.workload = "water_nsquared";
            cfg.workloadScale = 0.25;
            cfg.cpuModel = model;
            cfg.platform =
                p ? host::m1ProConfig() : host::xeonConfig();
            cfg.seed = 7 + (std::uint64_t)p;
            configs.push_back(cfg);
        }
    }
    return configs;
}

/** Serial reference, computed once and shared by every test here. */
const std::vector<std::string> &
serialSweepSignatures()
{
    static const std::vector<std::string> sigs =
        signatures(runExperiments(sweepConfigs(), 1));
    return sigs;
}

} // namespace

// ---------------------------------------------------------------
// The acceptance gate: serial == 4-thread, bit for bit
// ---------------------------------------------------------------

TEST(ParallelDeterminismGate, SerialEqualsFourThreads)
{
    std::vector<RunConfig> configs = sweepConfigs();
    const std::vector<std::string> &serial = serialSweepSignatures();

    ParallelExecutor pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    std::vector<std::string> pooled = signatures(pool.run(configs));

    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], pooled[i])
            << "config " << i << " ("
            << os::cpuModelName(configs[i].cpuModel) << ")";
}

TEST(Parallel, DeterministicUnderShuffledSubmission)
{
    const std::vector<RunConfig> configs = sweepConfigs();
    const std::vector<std::string> &serial = serialSweepSignatures();

    // Whatever order jobs are submitted (and therefore stolen) in,
    // each config's result must equal its serial reference.
    std::mt19937 rng(1234);
    for (int round = 0; round < 2; ++round) {
        std::vector<std::size_t> perm(configs.size());
        std::iota(perm.begin(), perm.end(), 0u);
        std::shuffle(perm.begin(), perm.end(), rng);

        std::vector<RunConfig> shuffled;
        for (std::size_t idx : perm)
            shuffled.push_back(configs[idx]);

        std::vector<std::string> pooled =
            signatures(ParallelExecutor(4).run(shuffled));
        ASSERT_EQ(pooled.size(), perm.size());
        for (std::size_t i = 0; i < perm.size(); ++i)
            EXPECT_EQ(serial[perm[i]], pooled[i])
                << "round " << round << " slot " << i;
    }
}

TEST(Parallel, BatchedSinkMatchesPerOpShim)
{
    // The batched ops() path must be bit-identical to the per-op
    // virtual shim: same Top-Down counters, same everything.
    for (os::CpuModel model :
         {os::CpuModel::Atomic, os::CpuModel::O3}) {
        RunConfig batched;
        batched.workload = "water_nsquared";
        batched.workloadScale = 0.25;
        batched.cpuModel = model;
        batched.platform = host::xeonConfig();

        RunConfig unbatched = batched;
        unbatched.sinkBatchOps = 1;

        RunResult a = runProfiledSimulation(batched);
        RunResult b = runProfiledSimulation(unbatched);
        EXPECT_EQ(resultSignature(a), resultSignature(b))
            << os::cpuModelName(model);
    }
}

TEST(Parallel, FirstFailureByIndexAfterDrain)
{
    // One bad job must not stop the others; the first failure in
    // submission order is rethrown once the pool has drained.
    std::vector<RunConfig> configs = sweepConfigs();
    configs.resize(4);
    configs[1].workload = "no_such_workload";
    EXPECT_THROW(ParallelExecutor(4).run(configs), WorkloadError);
}

TEST(Parallel, ExecutorDefaultsAndSerialFallback)
{
    EXPECT_GE(ParallelExecutor::hardwareJobs(), 1u);
    EXPECT_GE(ParallelExecutor().jobs(), 1u);

    // jobs<=1 takes the plain serial path; empty input is a no-op.
    EXPECT_TRUE(runExperiments({}, 4).empty());
    std::vector<RunConfig> one{sweepConfigs()[0]};
    std::vector<std::string> serial =
        signatures(runExperiments(one, 0));
    ASSERT_EQ(serial.size(), 1u);
    EXPECT_EQ(serial[0], serialSweepSignatures()[0]);
}

// ---------------------------------------------------------------
// Machine-level isolation: whole simulators on raw threads
// ---------------------------------------------------------------

namespace
{

using namespace g5p::isa;
using namespace g5p::os;

/** Workload built from a lambda, for ad-hoc guest programs. */
class InlineWorkload : public GuestWorkload
{
  public:
    using EmitFn = std::function<void(Assembler &, unsigned)>;

    InlineWorkload(std::string name, EmitFn emit)
        : name_(std::move(name)), emit_(std::move(emit))
    {}

    std::string name() const override { return name_; }

    void
    emit(Assembler &as, unsigned num_cpus, SimMode mode) const override
    {
        emit_(as, num_cpus);
    }

  private:
    std::string name_;
    EmitFn emit_;
};

/**
 * A store/load/branch loop with enough traffic to exercise caches,
 * TLBs, the decode cache and (on Minor/O3) the branch predictor —
 * the structures whose pooled state used to be process-global.
 */
const InlineWorkload &
poolWorkload()
{
    static InlineWorkload wl("pool-loop", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 1200);
        as.li(RegT2, 0x200000);
        as.label("loop");
        as.andi(RegT0, RegS0, 127);
        as.slli(RegT0, RegT0, 3);
        as.add(RegT0, RegT0, RegT2);
        as.sd(RegS0, RegT0, 0);
        as.ld(RegT1, RegT0, 0);
        as.add(RegS1, RegS1, RegT1);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        as.li(RegT0, (std::int64_t)GuestWorkload::resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();
    });
    return wl;
}

/** Everything we compare between a serial and a threaded machine. */
struct Artifacts
{
    std::string stats;
    std::uint64_t result = 0;
    std::uint64_t insts = 0;
    std::uint64_t memDigest = 0;
    Tick finalTick = 0;
};

/** One simulator+system pair owned entirely by one thread. */
struct Machine
{
    sim::Simulator sim{"system"};
    System system;

    explicit Machine(CpuModel model)
        : system(sim,
                 [model] {
                     SystemConfig cfg;
                     cfg.cpuModel = model;
                     return cfg;
                 }(),
                 poolWorkload())
    {}

    Artifacts
    finish(Tick tick_limit = maxTick)
    {
        auto res = system.run(tick_limit);
        EXPECT_EQ(res.cause, sim::ExitCause::Finished);
        Artifacts a;
        // Stats first: System::result() reads guest memory through
        // the instrumented path and would bump physmem counters.
        std::ostringstream stats;
        sim.dumpStats(stats);
        a.stats = stats.str();
        a.result = system.result();
        a.insts = system.totalInsts();
        a.memDigest = system.physmem().contentDigest();
        a.finalTick = res.tick;
        return a;
    }
};

void
expectSameArtifacts(const Artifacts &a, const Artifacts &b)
{
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.finalTick, b.finalTick);
    EXPECT_EQ(a.memDigest, b.memDigest);
    EXPECT_EQ(a.stats, b.stats);
}

/** Serial reference artifacts, one machine per CPU model. */
std::vector<Artifacts>
serialArtifacts()
{
    std::vector<Artifacts> ref;
    for (CpuModel model : allCpuModels)
        ref.push_back(Machine(model).finish());
    return ref;
}

} // namespace

TEST(Parallel, ConcurrentMachinesMatchSerialStatsAndMemory)
{
    // Reference: each model run serially on the main thread.
    std::vector<Artifacts> ref = serialArtifacts();

    // All four models at once, one whole machine per thread. The
    // stats text and the memory digest — the strictest observables we
    // have — must match the serial run exactly.
    std::vector<Artifacts> out(ref.size());
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < ref.size(); ++i)
        threads.emplace_back([i, &out] {
            out[i] = Machine(allCpuModels[i]).finish();
        });
    for (auto &t : threads)
        t.join();

    for (std::size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE(cpuModelName(allCpuModels[i]));
        expectSameArtifacts(ref[i], out[i]);
    }
}

TEST(Parallel, CheckpointRestoreInsidePooledJob)
{
    // PR-2's bit-identical checkpoint/restore guarantee must survive
    // pooling: four jobs checkpoint and restore concurrently (the
    // checkpoint I/O hook used to be a process-global).
    std::vector<Artifacts> ref = serialArtifacts();

    std::vector<Artifacts> resumed(ref.size());
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < ref.size(); ++i)
        threads.emplace_back([i, &ref, &resumed] {
            CpuModel model = allCpuModels[i];
            std::string path = ::testing::TempDir() +
                               "/g5p_pool_" + cpuModelName(model) +
                               ".ckpt";
            {
                Machine mb(model);
                auto part = mb.system.run(ref[i].finalTick / 2);
                ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
                mb.sim.checkpoint(path);
            }
            Machine mc(model);
            mc.sim.restore(path);
            resumed[i] = mc.finish();
            std::remove(path.c_str());
        });
    for (auto &t : threads)
        t.join();

    for (std::size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE(cpuModelName(allCpuModels[i]));
        expectSameArtifacts(ref[i], resumed[i]);
    }
}

// ---------------------------------------------------------------
// Per-job wall cap: one hung config cannot stall the sweep
// ---------------------------------------------------------------

namespace
{

/** Register a branch-to-self guest that never halts. */
void
registerHangWorkload()
{
    static bool once = [] {
        workloads::Registry::instance().add(
            "par-hang", [](double) {
                return std::make_unique<InlineWorkload>(
                    "par-hang", [](Assembler &as, unsigned) {
                        as.label("_start");
                        as.label("spin");
                        as.j("spin");
                    });
            });
        return true;
    }();
    (void)once;
}

/** Register a short counting loop that finishes in milliseconds. */
void
registerTinyWorkload()
{
    static bool once = [] {
        workloads::Registry::instance().add(
            "par-tiny", [](double) {
                return std::make_unique<InlineWorkload>(
                    "par-tiny", [](Assembler &as, unsigned) {
                        as.label("_start");
                        as.li(RegS0, 0);
                        as.li(RegT3, 200);
                        as.label("loop");
                        as.addi(RegS0, RegS0, 1);
                        as.blt(RegS0, RegT3, "loop");
                        as.halt();
                    });
            });
        return true;
    }();
    (void)once;
}

} // namespace

TEST(Parallel, WallCapSurfacesWatchdogTimeoutInPooledResults)
{
    registerHangWorkload();
    registerTinyWorkload();

    // A hung config and a healthy one in the same sweep: under a
    // per-job wall cap the hung job comes back as a normal result
    // with exitCause == WatchdogTimeout and the sweep completes.
    RunConfig hung;
    hung.workload = "par-hang";
    hung.platform = host::xeonConfig();

    // The healthy job is a milliseconds-long counting loop, so the
    // cap has orders-of-magnitude headroom even under TSan (where
    // simulation is ~10x slower) and even while the hung job's spin
    // steals wall-clock on a one-core host. The hung job gets cut
    // at the cap regardless of how large it is.
    RunConfig healthy;
    healthy.workload = "par-tiny";
    healthy.platform = host::xeonConfig();

    std::vector<RunResult> results =
        runExperiments({hung, healthy}, 2, 10.0);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].exitCause, sim::ExitCause::WatchdogTimeout);
    EXPECT_FALSE(results[0].exitMessage.empty());
    EXPECT_EQ(results[1].exitCause, sim::ExitCause::Finished);

    // The healthy job's result under the cap is byte-identical to
    // the serial capped reference — the cap changes scheduling
    // safety, never results.
    std::vector<RunResult> serial =
        runExperiments({healthy}, 1, 10.0);
    ASSERT_EQ(serial.size(), 1u);
    EXPECT_EQ(resultSignature(results[1]), resultSignature(serial[0]));

    // A config that already supervises with a tighter budget keeps
    // it: withJobWallCap is the identity there.
    RunConfig tight = hung;
    tight.run.supervise = true;
    tight.run.watchdog.maxWallSeconds = 0.05;
    RunConfig capped = withJobWallCap(tight, 0.2);
    EXPECT_DOUBLE_EQ(capped.run.watchdog.maxWallSeconds, 0.05);

    RunConfig widened = withJobWallCap(RunConfig{}, 0.2);
    EXPECT_TRUE(widened.run.supervise);
    EXPECT_DOUBLE_EQ(widened.run.watchdog.maxWallSeconds, 0.2);
}

// ---------------------------------------------------------------
// Decoder isolation audit
// ---------------------------------------------------------------

TEST(Parallel, DecoderInstancesShareNothing)
{
    // Each run owns its Decoder: caching in one instance must not be
    // visible in another, and the uncached path must mint fresh
    // instructions (no hidden global instance pool).
    std::uint64_t word = encode(Opcode::Add, 1, 2, 3, 0);

    Decoder a;
    Decoder b;
    auto ia = a.decode(word);
    EXPECT_EQ(a.cacheSize(), 1u);
    EXPECT_EQ(b.cacheSize(), 0u);
    EXPECT_EQ(b.numDecodes(), 0u);

    auto ib = b.decode(word);
    EXPECT_NE(ia.get(), ib.get());
    EXPECT_EQ(ia->disassemble(), ib->disassemble());

    EXPECT_NE(Decoder::decodeOne(word).get(),
              Decoder::decodeOne(word).get());
}

TEST(Parallel, ConcurrentDecodersAreIndependent)
{
    std::vector<std::uint64_t> words{
        encode(Opcode::Add, 1, 2, 3, 0),
        encode(Opcode::Addi, 1, 2, 0, -5),
        encode(Opcode::Ld, 1, 2, 0, 16),
        encode(Opcode::Sd, 0, 2, 3, 24),
        encode(Opcode::Beq, 0, 1, 2, 8),
    };

    std::vector<std::size_t> cacheSizes(4);
    std::vector<std::uint64_t> decodes(4);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 4; ++t)
        threads.emplace_back([t, &words, &cacheSizes, &decodes] {
            Decoder d;
            for (int round = 0; round < 100; ++round)
                for (std::uint64_t w : words)
                    d.decode(w);
            cacheSizes[t] = d.cacheSize();
            decodes[t] = d.numDecodes();
        });
    for (auto &thread : threads)
        thread.join();

    for (std::size_t t = 0; t < 4; ++t) {
        EXPECT_EQ(cacheSizes[t], words.size());
        EXPECT_EQ(decodes[t], 100u * words.size());
    }
}
