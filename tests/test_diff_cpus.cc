/**
 * @file
 * Differential testing across CPU models: the architectural outcome
 * of a workload (guest checksum, retired instruction count, final
 * memory image) must not depend on the timing model. Atomic is the
 * reference; every other model must agree exactly.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>

#include "os/system.hh"

using namespace g5p;
using namespace g5p::isa;
using namespace g5p::os;

namespace
{

class DiffWorkload : public GuestWorkload
{
  public:
    using EmitFn = std::function<void(Assembler &, unsigned)>;

    DiffWorkload(std::string name, EmitFn emit)
        : name_(std::move(name)), emit_(std::move(emit))
    {}

    std::string name() const override { return name_; }

    void
    emit(Assembler &as, unsigned num_cpus, SimMode mode) const override
    {
        emit_(as, num_cpus);
    }

  private:
    std::string name_;
    EmitFn emit_;
};

struct ArchOutcome
{
    std::uint64_t result;
    std::uint64_t insts;
    std::uint64_t memDigest;
    std::string console;
};

ArchOutcome
runArch(CpuModel model, const GuestWorkload &wl)
{
    sim::Simulator sim("system");
    SystemConfig cfg;
    cfg.cpuModel = model;
    System system(sim, cfg, wl);
    auto res = system.run(5'000'000'000'000ULL);
    EXPECT_EQ(res.cause, sim::ExitCause::Finished)
        << cpuModelName(model);
    ArchOutcome out;
    out.result = system.result();
    out.insts = system.totalInsts();
    out.memDigest = system.physmem().contentDigest();
    out.console = system.process().emulator().consoleOutput();
    return out;
}

void
expectArchEqual(const GuestWorkload &wl, CpuModel model)
{
    ArchOutcome ref = runArch(CpuModel::Atomic, wl);
    ArchOutcome got = runArch(model, wl);
    EXPECT_EQ(ref.result, got.result) << cpuModelName(model);
    EXPECT_EQ(ref.insts, got.insts) << cpuModelName(model);
    EXPECT_EQ(ref.memDigest, got.memDigest) << cpuModelName(model);
    EXPECT_EQ(ref.console, got.console) << cpuModelName(model);
}

const DiffWorkload &
mixedWorkload()
{
    // Arithmetic, shifts, dependent loads/stores with aliasing
    // offsets, and data-dependent branches: the cases where a
    // pipeline bug (bad forwarding, wrong-path leakage, stale store
    // data) would diverge from the atomic reference.
    static DiffWorkload wl("mixed", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 900);
        as.li(RegT2, 0x300000);
        as.label("loop");
        as.mul(RegT0, RegS0, RegS0);
        as.xor_(RegT0, RegT0, RegS1);
        as.andi(RegT1, RegS0, 127);
        as.slli(RegT1, RegT1, 3);
        as.add(RegT1, RegT1, RegT2);
        as.sd(RegT0, RegT1, 0);
        as.ld(RegT0, RegT1, 0);
        as.andi(RegT4, RegS0, 1);
        as.beq(RegT4, RegZero, "even");
        as.add(RegS1, RegS1, RegT0);
        as.j("next");
        as.label("even");
        as.sub(RegS1, RegS1, RegT0);
        as.label("next");
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        as.li(RegT0, (std::int64_t)GuestWorkload::resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();
    });
    return wl;
}

const DiffWorkload &
divRemWorkload()
{
    static DiffWorkload wl("divrem", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 1);
        as.li(RegT3, 300);
        as.label("loop");
        as.li(RegT0, 982451653);
        as.div(RegT1, RegT0, RegS0);
        as.rem(RegT2, RegT0, RegS0);
        as.add(RegS1, RegS1, RegT1);
        as.add(RegS1, RegS1, RegT2);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        as.li(RegT0, (std::int64_t)GuestWorkload::resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();
    });
    return wl;
}

class DiffCpus : public ::testing::TestWithParam<CpuModel>
{};

TEST_P(DiffCpus, MixedAluMemBranchAgreesWithAtomic)
{
    expectArchEqual(mixedWorkload(), GetParam());
}

TEST_P(DiffCpus, DivRemAgreesWithAtomic)
{
    expectArchEqual(divRemWorkload(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Models, DiffCpus,
    ::testing::Values(CpuModel::Timing, CpuModel::Minor, CpuModel::O3),
    [](const auto &info) {
        return std::string(cpuModelName(info.param));
    });

} // namespace
