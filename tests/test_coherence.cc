/**
 * @file
 * Coherence verification backbone for the multi-core guest:
 *
 *  - the RubyRandomTester-style stress engine (mem::MemTester):
 *    seeded random load/store mixes over false-shared lines, with
 *    per-address last-writer value checking and protocol-invariant
 *    sweeps, across seeds x core counts x {Atomic, Timing};
 *  - litmus tests (SB, MP, LB, CoRR): table-driven two-thread guest
 *    programs run over many seeded interleavings, asserting every
 *    observed outcome is allowed under sequential consistency;
 *  - determinism gates: the same seed must produce byte-identical
 *    stats dumps, for the tester rig and for a threaded guest;
 *  - multi-core regressions for the formerly single-core paths
 *    (totalInsts aggregation, threaded workload checksums,
 *    fast-forward on a 2-core guest).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "mem/mem_tester.hh"
#include "os/system.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::isa;
using namespace g5p::os;

namespace
{

// ---------------------------------------------------------------
// Random coherence stress (satellite: tester as a ctest suite)
// ---------------------------------------------------------------

struct StressCase
{
    std::uint64_t seed;
    unsigned cores;
    bool atomic;
};

std::string
stressName(const StressCase &c)
{
    std::ostringstream os;
    os << "seed" << c.seed << "_" << c.cores << "core_"
       << (c.atomic ? "Atomic" : "Timing");
    return os.str();
}

/** Build a tester, run it to completion, and report any violation
 *  with the flight-recorder dump attached. */
void
runStress(const mem::MemTesterParams &params)
{
    sim::Simulator sim("tester");
    mem::MemTester tester(sim, "mt", params);

    sim::SimResult res = sim.run();
    ASSERT_EQ(res.cause, sim::ExitCause::Finished)
        << "stress run died: " << sim::exitCauseName(res.cause)
        << "\n" << sim.diagnosticDump();
    ASSERT_TRUE(tester.allDone());

    if (!tester.violations().empty()) {
        std::ostringstream os;
        for (const auto &v : tester.violations())
            os << "  " << v << "\n";
        FAIL() << tester.violations().size()
               << " coherence violation(s):\n" << os.str()
               << "--- flight recorder ---\n" << sim.diagnosticDump();
    }

    // The mix must actually exercise all three op classes.
    EXPECT_GT(tester.loads(), 0u);
    EXPECT_GT(tester.stores(), 0u);
    EXPECT_GT(tester.checkReads(), 0u);
    EXPECT_GT(tester.sweeps(), 0u);
}

class CoherenceStress : public ::testing::TestWithParam<StressCase>
{};

TEST_P(CoherenceStress, NoViolations)
{
    StressCase c = GetParam();
    mem::MemTesterParams p;
    p.numCores = c.cores;
    p.seed = c.seed;
    p.atomicMode = c.atomic;
    p.opsPerCore = 1500;
    runStress(p);
}

std::vector<StressCase>
stressCases()
{
    std::vector<StressCase> cases;
    for (std::uint64_t seed : {1, 2, 3, 4})
        for (unsigned cores : {2u, 4u})
            for (bool atomic : {false, true})
                cases.push_back({seed, cores, atomic});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CoherenceStress, ::testing::ValuesIn(stressCases()),
    [](const auto &info) { return stressName(info.param); });

TEST(CoherenceStress, RacesAreExercised)
{
    // A write-heavy 4-core mix over very few lines forces S->M
    // upgrades to collide; across these seeds at least one upgrade
    // or in-flight-fill race must fire, proving the transient-state
    // recovery paths are actually covered by the suite.
    std::uint64_t races = 0;
    for (std::uint64_t seed : {11, 12, 13, 14, 15}) {
        sim::Simulator sim("tester");
        mem::MemTesterParams p;
        p.numCores = 4;
        p.seed = seed;
        p.opsPerCore = 1500;
        p.actionLines = 2;
        p.percentChecks = 10;
        p.percentWrites = 60;
        mem::MemTester tester(sim, "mt", p);
        sim::SimResult res = sim.run();
        ASSERT_EQ(res.cause, sim::ExitCause::Finished);
        EXPECT_TRUE(tester.violations().empty());
        races += tester.upgradeRaces() + tester.fillRaces();
    }
    EXPECT_GT(races, 0u)
        << "no upgrade/fill race fired; the stress mix has gone limp";
}

TEST(CoherenceStress, SameSeedIsByteIdentical)
{
    // Determinism gate: two fresh simulators, same seed, must emit
    // byte-identical stats dumps (event order, op mix, race counts).
    auto dump = [] {
        sim::Simulator sim("tester");
        mem::MemTesterParams p;
        p.numCores = 4;
        p.seed = 7;
        p.opsPerCore = 1200;
        mem::MemTester tester(sim, "mt", p);
        sim::SimResult res = sim.run();
        EXPECT_EQ(res.cause, sim::ExitCause::Finished);
        EXPECT_TRUE(tester.violations().empty());
        std::ostringstream os;
        sim.dumpStats(os);
        return os.str();
    };
    std::string a = dump();
    std::string b = dump();
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------
// Litmus tests (satellite: SB, MP, LB, CoRR)
// ---------------------------------------------------------------

/** Workload built from a lambda, for ad-hoc guest programs. */
class InlineWorkload : public GuestWorkload
{
  public:
    using EmitFn = std::function<void(Assembler &, unsigned)>;

    InlineWorkload(std::string name, EmitFn emit)
        : name_(std::move(name)), emit_(std::move(emit))
    {}

    std::string name() const override { return name_; }

    void
    emit(Assembler &as, unsigned num_cpus, SimMode mode) const override
    {
        emit_(as, num_cpus);
    }

  private:
    std::string name_;
    EmitFn emit_;
};

constexpr Addr litX = 0x200000;      // variable x (own line)
constexpr Addr litY = 0x200040;      // variable y (own line)

/** Observation slot @p k of thread @p t (two 8-byte slots each). */
constexpr Addr
obsAddr(unsigned t, unsigned k)
{
    return 0xa00 + t * 16 + k * 8;
}

/** Per-thread interleaving jitter: 1..48 dead cycles from the seed. */
unsigned
delayFor(std::uint64_t seed, unsigned thread)
{
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL +
                      (thread + 1) * 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 29;
    return 1 + (unsigned)(x % 48);
}

void
emitDelay(Assembler &as, unsigned iters, const std::string &label)
{
    as.li(RegT0, (std::int64_t)iters);
    as.label(label);
    as.addi(RegT0, RegT0, -1);
    as.bne(RegT0, RegZero, label);
}

void
emitStoreImm(Assembler &as, Addr addr, std::uint64_t val)
{
    as.li(RegT1, (std::int64_t)addr);
    as.li(RegT2, (std::int64_t)val);
    as.sd(RegT2, RegT1, 0);
}

void
emitLoadTo(Assembler &as, Addr addr, RegIndex dst)
{
    as.li(RegT1, (std::int64_t)addr);
    as.ld(dst, RegT1, 0);
}

/** Observations: thread 0 regs (r00, r01), thread 1 regs (r10, r11);
 *  unused slots read as 0. */
struct Outcome
{
    std::uint64_t r00, r01, r10, r11;

    bool operator<(const Outcome &o) const
    {
        return std::tie(r00, r01, r10, r11) <
               std::tie(o.r00, o.r01, o.r10, o.r11);
    }

    std::string
    str() const
    {
        std::ostringstream os;
        os << "(" << r00 << "," << r01 << "," << r10 << "," << r11
           << ")";
        return os.str();
    }
};

struct LitmusTest
{
    const char *name;
    std::function<void(Assembler &)> thread0;
    std::function<void(Assembler &)> thread1;
    std::function<bool(const Outcome &)> allowed;
};

// Observation registers: s1 holds the thread's first observation,
// raw s3 (x19) the second. Threads store them before halting.
constexpr RegIndex RegObs0 = RegS1;
constexpr RegIndex RegObs1 = 19;

std::vector<LitmusTest>
litmusTable()
{
    return {
        // Store buffering: both threads store, then read the other
        // variable. SC forbids both reads missing both stores.
        {"SB",
         [](Assembler &as) {
             emitStoreImm(as, litX, 1);
             emitLoadTo(as, litY, RegObs0);
         },
         [](Assembler &as) {
             emitStoreImm(as, litY, 1);
             emitLoadTo(as, litX, RegObs0);
         },
         [](const Outcome &o) { return !(o.r00 == 0 && o.r10 == 0); }},

        // Message passing: data then flag; a reader that sees the
        // flag must see the data.
        {"MP",
         [](Assembler &as) {
             emitStoreImm(as, litX, 1); // data
             emitStoreImm(as, litY, 1); // flag
         },
         [](Assembler &as) {
             emitLoadTo(as, litY, RegObs0); // flag
             emitLoadTo(as, litX, RegObs1); // data
         },
         [](const Outcome &o) { return !(o.r10 == 1 && o.r11 == 0); }},

        // Load buffering: loads precede the cross-stores; SC forbids
        // both loads observing the (program-later) stores.
        {"LB",
         [](Assembler &as) {
             emitLoadTo(as, litY, RegObs0);
             emitStoreImm(as, litX, 1);
         },
         [](Assembler &as) {
             emitLoadTo(as, litX, RegObs0);
             emitStoreImm(as, litY, 1);
         },
         [](const Outcome &o) { return !(o.r00 == 1 && o.r10 == 1); }},

        // Coherent read-read: same-location reads must observe the
        // write serialization order (0 -> 1 -> 2), never go backwards.
        {"CoRR",
         [](Assembler &as) {
             emitStoreImm(as, litX, 1);
             emitStoreImm(as, litX, 2);
         },
         [](Assembler &as) {
             emitLoadTo(as, litX, RegObs0);
             emitLoadTo(as, litX, RegObs1);
         },
         [](const Outcome &o) { return o.r11 >= o.r10; }},
    };
}

/** Two-thread litmus program: per-thread seeded delay, the thread
 *  body, then publish observations and halt. */
InlineWorkload
litmusWorkload(const LitmusTest &test, std::uint64_t seed)
{
    return InlineWorkload(
        std::string("litmus-") + test.name,
        [&test, seed](Assembler &as, unsigned) {
            as.label("_start");
            as.li(RegObs0, 0);
            as.li(RegObs1, 0);
            as.bne(RegA0, RegZero, "t1");

            emitDelay(as, delayFor(seed, 0), "d0");
            test.thread0(as);
            as.li(RegT1, (std::int64_t)obsAddr(0, 0));
            as.sd(RegObs0, RegT1, 0);
            as.li(RegT1, (std::int64_t)obsAddr(0, 1));
            as.sd(RegObs1, RegT1, 0);
            as.halt();

            as.label("t1");
            emitDelay(as, delayFor(seed, 1), "d1");
            test.thread1(as);
            as.li(RegT1, (std::int64_t)obsAddr(1, 0));
            as.sd(RegObs0, RegT1, 0);
            as.li(RegT1, (std::int64_t)obsAddr(1, 1));
            as.sd(RegObs1, RegT1, 0);
            as.halt();
        });
}

struct LitmusCase
{
    std::size_t index; // into litmusTable()
    CpuModel model;
};

class Litmus : public ::testing::TestWithParam<LitmusCase>
{};

TEST_P(Litmus, OnlyScOutcomes)
{
    LitmusTest test = litmusTable()[GetParam().index];
    CpuModel model = GetParam().model;

    std::map<Outcome, unsigned> histogram;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        InlineWorkload wl = litmusWorkload(test, seed);
        sim::Simulator sim("system");
        SystemConfig cfg;
        cfg.cpuModel = model;
        cfg.numCpus = 2;
        System system(sim, cfg, wl);
        sim::SimResult res = system.run();
        ASSERT_EQ(res.cause, sim::ExitCause::Finished)
            << test.name << " seed " << seed;

        Outcome o{system.physmem().read(obsAddr(0, 0), 8),
                  system.physmem().read(obsAddr(0, 1), 8),
                  system.physmem().read(obsAddr(1, 0), 8),
                  system.physmem().read(obsAddr(1, 1), 8)};
        EXPECT_TRUE(test.allowed(o))
            << test.name << " seed " << seed
            << ": non-SC outcome " << o.str();
        histogram[o] += 1;
    }

    // The seeded delays must actually shuffle the interleaving: a
    // Timing run that always lands on one outcome would mean the
    // litmus harness tests nothing.
    if (model == CpuModel::Timing) {
        EXPECT_GE(histogram.size(), 2u)
            << test.name << ": 64 seeds produced a single outcome";
    }
}

std::vector<LitmusCase>
litmusCases()
{
    std::vector<LitmusCase> cases;
    for (std::size_t i = 0; i < litmusTable().size(); ++i)
        for (CpuModel model : {CpuModel::Atomic, CpuModel::Timing})
            cases.push_back({i, model});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Litmus, ::testing::ValuesIn(litmusCases()),
    [](const auto &info) {
        return std::string(litmusTable()[info.param.index].name) +
               "_" + cpuModelName(info.param.model);
    });

// ---------------------------------------------------------------
// Threaded guest workloads on the coherent machine
// ---------------------------------------------------------------

struct GuestCase
{
    const char *workload;
    double scale;
    CpuModel model;
    unsigned cores;
};

class ThreadedGuest : public ::testing::TestWithParam<GuestCase>
{};

TEST_P(ThreadedGuest, ChecksumMatchesGoldenModel)
{
    GuestCase c = GetParam();
    auto wl = workloads::Registry::instance().create(c.workload,
                                                     c.scale);
    sim::Simulator sim("system");
    SystemConfig cfg;
    cfg.cpuModel = c.model;
    cfg.numCpus = c.cores;
    System system(sim, cfg, *wl);
    sim::SimResult res = system.run();
    ASSERT_EQ(res.cause, sim::ExitCause::Finished)
        << sim.diagnosticDump();

    std::uint64_t expected = wl->expectedResult(c.cores);
    ASSERT_NE(expected, 0u);
    EXPECT_EQ(system.result(), expected);
    EXPECT_GT(system.totalInsts(), 0u);
    // Workers must have committed work too, not just cpu0.
    if (c.cores > 1) {
        for (unsigned i = 0; i < c.cores; ++i)
            EXPECT_GT(system.cpu(i).numInsts(), 0u) << "cpu" << i;
    }
}

std::vector<GuestCase>
guestCases()
{
    std::vector<GuestCase> cases;
    for (CpuModel model : {CpuModel::Atomic, CpuModel::Timing})
        for (unsigned cores : {1u, 2u, 4u}) {
            cases.push_back({"radix_threads", 0.25, model, cores});
            cases.push_back({"lu_threads", 0.75, model, cores});
        }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ThreadedGuest, ::testing::ValuesIn(guestCases()),
    [](const auto &info) {
        std::ostringstream os;
        os << info.param.workload << "_"
           << cpuModelName(info.param.model) << "_"
           << info.param.cores << "core";
        return os.str();
    });

TEST(ThreadedGuest, ChecksumIndependentOfCoreCount)
{
    // The kernels are written so the reduction order (and thus the
    // checksum) does not depend on the thread count.
    for (const char *name : {"radix_threads", "lu_threads"}) {
        auto wl = workloads::Registry::instance().create(name, 0.25);
        std::uint64_t e1 = wl->expectedResult(1);
        EXPECT_EQ(e1, wl->expectedResult(2)) << name;
        EXPECT_EQ(e1, wl->expectedResult(4)) << name;
    }
}

TEST(ThreadedGuest, SameSeedStatsAreByteIdentical)
{
    // Guest-level determinism gate: two identical 2-core Timing runs
    // of a threaded workload dump byte-identical stats.
    auto dump = [] {
        auto wl = workloads::Registry::instance().create(
            "radix_threads", 0.25);
        sim::Simulator sim("system");
        SystemConfig cfg;
        cfg.cpuModel = CpuModel::Timing;
        cfg.numCpus = 2;
        System system(sim, cfg, *wl);
        sim::SimResult res = system.run();
        EXPECT_EQ(res.cause, sim::ExitCause::Finished);
        std::ostringstream os;
        sim.dumpStats(os);
        return os.str();
    };
    std::string a = dump();
    std::string b = dump();
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------
// Multi-core regressions for formerly single-core paths
// ---------------------------------------------------------------

TEST(MultiCoreRegression, ExperimentAggregatesAllCores)
{
    core::RunConfig cfg;
    cfg.workload = "radix_threads";
    cfg.workloadScale = 0.25;
    cfg.cpuModel = CpuModel::Timing;
    cfg.guestCpus = 2;
    cfg.platform = host::xeonConfig();
    core::RunResult r = core::runProfiledSimulation(cfg);
    EXPECT_TRUE(r.resultChecked);
    EXPECT_TRUE(r.resultOk);

    // guestInsts must aggregate both cores: a 2-core run of the same
    // kernel commits strictly more than the single-core run (spawn/
    // join/barrier overhead plus the duplicated worker prologues).
    cfg.guestCpus = 1;
    core::RunResult r1 = core::runProfiledSimulation(cfg);
    EXPECT_TRUE(r1.resultOk);
    EXPECT_GT(r.guestInsts, r1.guestInsts);
}

TEST(MultiCoreRegression, FastForwardBoundaryOnTwoCores)
{
    // The fast-forward milestone is armed on cpu0 only (by design —
    // cpu0 runs the main thread); the switch must still happen and
    // the checksum must survive on a 2-core guest.
    core::RunConfig cfg;
    cfg.workload = "radix_threads";
    cfg.workloadScale = 0.25;
    cfg.cpuModel = CpuModel::Timing;
    cfg.guestCpus = 2;
    cfg.fastForwardInsts = 2000;
    cfg.platform = host::xeonConfig();
    core::RunResult r = core::runProfiledSimulation(cfg);
    EXPECT_TRUE(r.resultChecked);
    EXPECT_TRUE(r.resultOk);
}

TEST(MultiCoreRegression, SharedLinesVisibleToXbar)
{
    // While a threaded kernel runs, the snoop filter must see lines
    // held by more than one L1 (the whole point of coherence); spot
    // check mid-run on a 2-core Timing guest.
    auto wl = workloads::Registry::instance().create("radix_threads",
                                                     0.25);
    sim::Simulator sim("system");
    SystemConfig cfg;
    cfg.cpuModel = CpuModel::Timing;
    cfg.numCpus = 2;
    System system(sim, cfg, *wl);

    // Run in slices until a shared line shows up (or completion).
    bool shared_seen = false;
    sim::SimResult res{};
    for (int slice = 0; slice < 2000; ++slice) {
        res = system.run(sim.curTick() + 50'000);
        if (system.xbar().sharedLineCount() > 0)
            shared_seen = true;
        if (res.cause != sim::ExitCause::TickLimit)
            break;
    }
    if (res.cause == sim::ExitCause::TickLimit)
        res = system.run();
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);
    EXPECT_TRUE(shared_seen)
        << "no line was ever held by two caches at a slice boundary";
    EXPECT_EQ(system.result(), wl->expectedResult(2));
}

} // namespace
