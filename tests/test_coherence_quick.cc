/**
 * @file
 * Sub-second coherence smoke for the `quick` pre-commit tier: one
 * small random-tester run per protocol mode plus a single litmus
 * shape. The full seeded sweep lives in test_coherence.cc.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mem/mem_tester.hh"
#include "sim/simulator.hh"

using namespace g5p;

namespace
{

void
smoke(bool atomic)
{
    sim::Simulator sim("tester");
    mem::MemTesterParams p;
    p.numCores = 2;
    p.seed = 1;
    p.opsPerCore = 250;
    p.atomicMode = atomic;
    mem::MemTester tester(sim, "mt", p);

    sim::SimResult res = sim.run();
    ASSERT_EQ(res.cause, sim::ExitCause::Finished)
        << sim::exitCauseName(res.cause) << "\n"
        << sim.diagnosticDump();
    ASSERT_TRUE(tester.allDone());

    if (!tester.violations().empty()) {
        std::ostringstream os;
        for (const auto &v : tester.violations())
            os << "  " << v << "\n";
        FAIL() << "coherence violation(s):\n" << os.str();
    }
    EXPECT_GT(tester.stores(), 0u);
}

TEST(CoherenceQuick, TimingSmoke) { smoke(false); }

TEST(CoherenceQuick, AtomicSmoke) { smoke(true); }

} // namespace
