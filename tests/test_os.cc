/**
 * @file
 * Tests for the OS layer: SE-mode process/syscalls, FS-lite boot,
 * kernel timer activity, and SE-vs-FS behavioural differences.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "os/system.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::os;

namespace
{

System *
makeSystem(sim::Simulator &sim, const GuestWorkload &wl,
           SimMode mode, unsigned cpus = 1)
{
    SystemConfig cfg;
    cfg.cpuModel = CpuModel::Atomic;
    cfg.mode = mode;
    cfg.numCpus = cpus;
    return new System(sim, cfg, wl);
}

} // namespace

TEST(Process, StackTopsAreDistinctAndAligned)
{
    sim::Simulator sim("system");
    auto wl = workloads::Registry::instance().create("boot-exit");
    SystemConfig cfg;
    cfg.numCpus = 4;
    System system(sim, cfg, *wl);

    auto &proc = system.process();
    std::set<Addr> tops;
    for (unsigned i = 0; i < 4; ++i) {
        Addr top = proc.stackTop(i);
        EXPECT_EQ(top % 16, 0u);
        EXPECT_LT(top, system.physmem().size());
        tops.insert(top);
    }
    EXPECT_EQ(tops.size(), 4u);
    // Stacks are at least stackBytes apart.
    auto it = tops.begin();
    Addr prev = *it++;
    for (; it != tops.end(); ++it) {
        EXPECT_GE(*it - prev, Process::stackBytes - 64);
        prev = *it;
    }
}

TEST(Process, BrkSyscallGrowsHeap)
{
    // Guest program: query brk, grow it by 4KB, re-query.
    class BrkWorkload : public GuestWorkload
    {
      public:
        std::string name() const override { return "brk"; }

        void
        emit(isa::Assembler &as, unsigned, SimMode) const override
        {
            using namespace isa;
            as.label("_start");
            as.li(RegA7, 214);
            as.li(RegA0, 0);
            as.ecall();            // a0 = current brk
            as.mv(RegS0, RegA0);
            as.addi(RegA0, RegS0, 4096);
            as.ecall();            // grow
            as.sub(RegS1, RegA0, RegS0); // should be 4096
            as.li(RegT0, (std::int64_t)resultAddr);
            as.sd(RegS1, RegT0, 0);
            as.halt();
        }
    } wl;

    sim::Simulator sim("system");
    std::unique_ptr<System> system(
        makeSystem(sim, wl, SimMode::SE));
    system->run();
    EXPECT_EQ(system->result(), 4096u);
}

TEST(Process, ExitSyscallHaltsCpu)
{
    class ExitWorkload : public GuestWorkload
    {
      public:
        std::string name() const override { return "exit"; }

        void
        emit(isa::Assembler &as, unsigned, SimMode) const override
        {
            using namespace isa;
            as.label("_start");
            as.li(RegA7, 93);
            as.li(RegA0, 17);
            as.ecall(); // never returns
            as.halt();
        }
    } wl;

    sim::Simulator sim("system");
    std::unique_ptr<System> system(
        makeSystem(sim, wl, SimMode::SE));
    auto res = system->run();
    EXPECT_EQ(res.cause, sim::ExitCause::Finished);
    EXPECT_EQ(system->process().emulator().exitStatus(), 17u);
}

TEST(Process, GetCpuSyscall)
{
    class GetCpuWorkload : public GuestWorkload
    {
      public:
        std::string name() const override { return "getcpu"; }

        void
        emit(isa::Assembler &as, unsigned num_cpus,
             SimMode) const override
        {
            using namespace isa;
            as.label("_start");
            as.li(RegA7, 168);
            as.ecall();
            as.mv(RegS1, RegA0);
            // Only CPU0 reports (single-CPU test).
            as.li(RegT0, (std::int64_t)resultAddr);
            as.sd(RegS1, RegT0, 0);
            as.halt();
        }
    } wl;

    sim::Simulator sim("system");
    std::unique_ptr<System> system(
        makeSystem(sim, wl, SimMode::SE));
    system->run();
    EXPECT_EQ(system->result(), 0u);
}

TEST(FsKernel, BootRunsBeforeWorkload)
{
    auto wl = workloads::Registry::instance().create("boot-exit");

    sim::Simulator sim("system");
    std::unique_ptr<System> system(
        makeSystem(sim, *wl, SimMode::FS));
    auto res = system->run();
    EXPECT_EQ(res.cause, sim::ExitCause::Finished);
    EXPECT_EQ(system->result(), 0xb007e817u);
    // The boot flag must have been published by the boot code.
    EXPECT_EQ(system->physmem().read(FsKernel::bootFlagAddr, 8), 1u);
    // And the boot page-table scratch region was filled.
    EXPECT_NE(system->physmem().read(FsKernel::bootTableAddr, 8), 0u);
}

TEST(FsKernel, FsExecutesMoreInstructionsThanSe)
{
    auto wl = workloads::Registry::instance().create("boot-exit");

    sim::Simulator sim_se("system");
    std::unique_ptr<System> se(makeSystem(sim_se, *wl, SimMode::SE));
    se->run();

    sim::Simulator sim_fs("system");
    std::unique_ptr<System> fs(makeSystem(sim_fs, *wl, SimMode::FS));
    fs->run();

    EXPECT_GT(fs->totalInsts(), se->totalInsts() + 500)
        << "FS boot must add substantial guest work";
    EXPECT_EQ(se->result(), fs->result());
}

TEST(FsKernel, SecondaryCpusWaitForBoot)
{
    auto wl = workloads::Registry::instance().create("boot-exit");
    sim::Simulator sim("system");
    std::unique_ptr<System> system(
        makeSystem(sim, *wl, SimMode::FS, 4));
    auto res = system->run();
    EXPECT_EQ(res.cause, sim::ExitCause::Finished);
    EXPECT_EQ(system->result(), 0xb007e817u);
    EXPECT_TRUE(system->allHalted());
}

TEST(FsKernel, TimerTicksAccumulate)
{
    // A long-ish busy loop in FS mode must see scheduler ticks.
    class SpinWorkload : public GuestWorkload
    {
      public:
        std::string name() const override { return "spin"; }

        void
        emit(isa::Assembler &as, unsigned, SimMode) const override
        {
            using namespace isa;
            as.label("_start");
            as.li(RegS0, 0);
            as.li(RegT3, 60000);
            as.label("loop");
            as.addi(RegS0, RegS0, 1);
            as.blt(RegS0, RegT3, "loop");
            as.halt();
        }
    } wl;

    sim::Simulator sim("system");
    std::unique_ptr<System> system(
        makeSystem(sim, wl, SimMode::FS));
    system->run();

    // 60k insts at 2GHz = 30us of guest time; the 10us timer must
    // have fired at least twice. Find its stat through the tree.
    const auto *stat = sim.findStat("kernel.timerTicks");
    ASSERT_NE(stat, nullptr);
    EXPECT_GE(stat->total(), 2.0);
}

TEST(SystemConfig, StatsDumpContainsAllComponents)
{
    auto wl = workloads::Registry::instance().create("sieve", 0.1);
    sim::Simulator sim("system");
    SystemConfig cfg;
    System system(sim, cfg, *wl);
    system.run();

    std::ostringstream os;
    sim.dumpStats(os);
    std::string dump = os.str();
    for (const char *needle :
         {"cpu0.committedInsts", "cpu0.icache.hits",
          "cpu0.dcache.misses", "l2.hits", "dram.reads",
          "cpu0.itlb.missRate", "physmem.pagesTouched",
          "xbar.transactions"}) {
        EXPECT_NE(dump.find(needle), std::string::npos)
            << "missing stat " << needle;
    }
}
