/**
 * @file
 * Full-system checkpoint/restore: every CPU model must resume
 * bit-identically. Three runs per model:
 *
 *   A  uninterrupted reference run;
 *   B  checkpoints mid-run, then continues — must equal A in every
 *      observable (proves taking a checkpoint perturbs nothing);
 *   C  a freshly built machine restored from B's checkpoint — final
 *      stats, instruction counts, memory image, and the post-restore
 *      commit trace must match A exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>
#include <vector>

#include "os/system.hh"
#include "sim/serialize.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::isa;
using namespace g5p::os;

namespace
{

/** Workload built from a lambda, for ad-hoc guest programs. */
class InlineWorkload : public GuestWorkload
{
  public:
    using EmitFn = std::function<void(Assembler &, unsigned)>;

    InlineWorkload(std::string name, EmitFn emit)
        : name_(std::move(name)), emit_(std::move(emit))
    {}

    std::string name() const override { return name_; }

    void
    emit(Assembler &as, unsigned num_cpus, SimMode mode) const override
    {
        emit_(as, num_cpus);
    }

  private:
    std::string name_;
    EmitFn emit_;
};

/** Store s1 to the result slot and halt (single-CPU programs). */
void
emitFinish(Assembler &as)
{
    as.li(RegT0, (std::int64_t)GuestWorkload::resultAddr);
    as.sd(RegS1, RegT0, 0);
    as.halt();
}

/**
 * A loop with stores, dependent loads, and branches: enough traffic
 * to populate caches, TLBs, the decode cache, and (on Minor/O3) the
 * branch predictor and pipeline structures.
 */
const InlineWorkload &
ckptWorkload()
{
    static InlineWorkload wl("ckpt-loop", [](Assembler &as, unsigned) {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 1500);
        as.li(RegT2, 0x200000);
        as.label("loop");
        as.andi(RegT0, RegS0, 255);
        as.slli(RegT0, RegT0, 3);
        as.add(RegT0, RegT0, RegT2);
        as.sd(RegS0, RegT0, 0);
        as.ld(RegT1, RegT0, 0);
        as.add(RegS1, RegS1, RegT1);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        emitFinish(as);
    });
    return wl;
}

/** Everything we compare across the three runs. */
struct Artifacts
{
    std::string stats;
    std::uint64_t result = 0;
    std::uint64_t insts = 0;
    std::uint64_t memDigest = 0;
    Tick finalTick = 0;
    std::string console;
};

using CommitTrace = std::vector<std::pair<Tick, Addr>>;

SystemConfig
makeCfg(CpuModel model, SimMode mode, unsigned cpus)
{
    SystemConfig cfg;
    cfg.cpuModel = model;
    cfg.mode = mode;
    cfg.numCpus = cpus;
    return cfg;
}

/** One machine instance with a commit-trace hook on every CPU. */
struct Machine
{
    sim::Simulator sim{"system"};
    System system;
    CommitTrace trace;

    explicit Machine(CpuModel model,
                     const GuestWorkload &wl = ckptWorkload(),
                     SimMode mode = SimMode::SE, unsigned cpus = 1)
        : system(sim, makeCfg(model, mode, cpus), wl)
    {
        for (unsigned i = 0; i < system.numCpus(); ++i)
            system.cpu(i).setCommitHook(
                [this](Tick t, Addr pc, const isa::StaticInst &) {
                    trace.emplace_back(t, pc);
                });
    }

    /** Run to completion and capture the comparison artifacts. */
    Artifacts
    finish(Tick tick_limit = maxTick)
    {
        auto res = system.run(tick_limit);
        EXPECT_EQ(res.cause, sim::ExitCause::Finished);
        Artifacts a;
        // Stats first: System::result() reads guest memory through
        // the instrumented path and would bump physmem counters.
        std::ostringstream stats;
        sim.dumpStats(stats);
        a.stats = stats.str();
        a.result = system.result();
        a.insts = system.totalInsts();
        a.memDigest = system.physmem().contentDigest();
        a.finalTick = res.tick;
        a.console = system.process().emulator().consoleOutput();
        return a;
    }
};

std::string
ckptPath(const std::string &tag)
{
    return ::testing::TempDir() + "/g5p_" + tag + ".ckpt";
}

void
expectSameArtifacts(const Artifacts &a, const Artifacts &b)
{
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.finalTick, b.finalTick);
    EXPECT_EQ(a.memDigest, b.memDigest);
    EXPECT_EQ(a.console, b.console);
    EXPECT_EQ(a.stats, b.stats);
}

class BitIdenticalResume : public ::testing::TestWithParam<CpuModel>
{};

TEST_P(BitIdenticalResume, AllObservablesSurviveRestore)
{
    CpuModel model = GetParam();
    std::string path =
        ckptPath(std::string("resume_") + cpuModelName(model));

    // Run A: the uninterrupted reference.
    Machine ma(model);
    Artifacts a = ma.finish();
    CommitTrace trace_a = ma.trace;
    ASSERT_GT(a.finalTick, 0u);

    // Run B: checkpoint halfway, then continue to completion. The
    // checkpoint itself must not perturb anything downstream.
    Tick mid = a.finalTick / 2;
    std::size_t trace_len_at_ckpt = 0;
    {
        Machine mb(model);
        auto part = mb.system.run(mid);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
        ASSERT_FALSE(mb.system.allHalted())
            << "workload too short to checkpoint mid-run";
        mb.sim.checkpoint(path);
        trace_len_at_ckpt = mb.trace.size();
        Artifacts b = mb.finish();
        expectSameArtifacts(a, b);
        EXPECT_EQ(trace_a, mb.trace);
    }
    ASSERT_GT(trace_len_at_ckpt, 0u);
    ASSERT_LT(trace_len_at_ckpt, trace_a.size());

    // Run C: restore into a freshly built machine; everything after
    // the checkpoint must replay exactly, including the commit trace.
    {
        Machine mc(model);
        mc.sim.restore(path);
        Artifacts c = mc.finish();
        expectSameArtifacts(a, c);
        CommitTrace expected(trace_a.begin() +
                                 (std::ptrdiff_t)trace_len_at_ckpt,
                             trace_a.end());
        EXPECT_EQ(expected, mc.trace);
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Models, BitIdenticalResume, ::testing::ValuesIn(allCpuModels),
    [](const auto &info) {
        return std::string(cpuModelName(info.param));
    });

TEST(CheckpointResume, FsModeTimerSurvives)
{
    // FS mode adds the kernel timer event: its schedule (and the
    // jiffies counter it bumps in guest memory) must survive restore.
    std::string path = ckptPath("fs_timer");

    Machine ma(CpuModel::Atomic, ckptWorkload(), SimMode::FS);
    Artifacts a = ma.finish();

    Tick mid = a.finalTick / 2;
    {
        Machine mb(CpuModel::Atomic, ckptWorkload(), SimMode::FS);
        auto part = mb.system.run(mid);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
        mb.sim.checkpoint(path);
    }
    {
        Machine mc(CpuModel::Atomic, ckptWorkload(), SimMode::FS);
        mc.sim.restore(path);
        Artifacts c = mc.finish();
        expectSameArtifacts(a, c);
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, MultiCoreResume)
{
    std::string path = ckptPath("multicore");
    InlineWorkload wl("mc", [](Assembler &as, unsigned num_cpus) {
        // Each CPU sums into its own slot; CPU0 spins for workers,
        // then collects. Worker completion flags use doneFlagAddr.
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 400);
        as.label("loop");
        as.add(RegS1, RegS1, RegS0);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");

        as.li(RegT0, 0xa00);
        as.slli(RegT1, RegA0, 3);
        as.add(RegT0, RegT0, RegT1);
        as.sd(RegS1, RegT0, 0);
        as.bne(RegA0, RegZero, "worker");

        for (unsigned w = 1; w < num_cpus; ++w) {
            std::string lbl = "wait" + std::to_string(w);
            as.li(RegT0,
                  (std::int64_t)GuestWorkload::doneFlagAddr(w));
            as.label(lbl);
            as.ld(RegT1, RegT0, 0);
            as.beq(RegT1, RegZero, lbl);
        }
        as.li(RegS1, 0);
        for (unsigned w = 0; w < num_cpus; ++w) {
            as.li(RegT0, (std::int64_t)(0xa00 + w * 8));
            as.ld(RegT1, RegT0, 0);
            as.add(RegS1, RegS1, RegT1);
        }
        emitFinish(as);

        as.label("worker");
        // flag address = doneFlagAddr(0) + cpu*8
        as.li(RegT1, 1);
        as.slli(RegT2, RegA0, 3);
        as.li(RegT0, (std::int64_t)GuestWorkload::doneFlagAddr(0));
        as.add(RegT0, RegT0, RegT2);
        as.sd(RegT1, RegT0, 0);
        as.halt();
    });

    Machine ma(CpuModel::Timing, wl, SimMode::SE, 2);
    Artifacts a = ma.finish();

    Tick mid = a.finalTick / 2;
    {
        Machine mb(CpuModel::Timing, wl, SimMode::SE, 2);
        auto part = mb.system.run(mid);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
        mb.sim.checkpoint(path);
    }
    {
        Machine mc(CpuModel::Timing, wl, SimMode::SE, 2);
        mc.sim.restore(path);
        Artifacts c = mc.finish();
        expectSameArtifacts(a, c);
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, FourCoreCoherentResume)
{
    // A 4-core Timing guest running a threaded kernel: the
    // checkpoint is taken mid-flight while lines are live-shared
    // between L1s (MESI S/E/M flags and the snoop-filter masks must
    // all survive), and the restored machine must replay the rest of
    // the run bit-identically — stats, commit trace, memory digest.
    std::string path = ckptPath("coherent4");
    auto wl = workloads::Registry::instance().create("radix_threads",
                                                     0.25);

    Machine ma(CpuModel::Timing, *wl, SimMode::SE, 4);
    Artifacts a = ma.finish();
    CommitTrace trace_a = ma.trace;
    ASSERT_GT(a.finalTick, 0u);

    Tick mid = a.finalTick / 2;
    std::size_t trace_len_at_ckpt = 0;
    {
        Machine mb(CpuModel::Timing, *wl, SimMode::SE, 4);
        auto part = mb.system.run(mid);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
        ASSERT_FALSE(mb.system.allHalted())
            << "workload too short to checkpoint mid-run";
        // Not a drained, trivially-private machine: at least one
        // line must be held by two caches at the checkpoint.
        EXPECT_GT(mb.system.xbar().sharedLineCount(), 0u);
        mb.sim.checkpoint(path);
        trace_len_at_ckpt = mb.trace.size();
        Artifacts b = mb.finish();
        expectSameArtifacts(a, b);
        EXPECT_EQ(trace_a, mb.trace);
    }
    ASSERT_GT(trace_len_at_ckpt, 0u);
    ASSERT_LT(trace_len_at_ckpt, trace_a.size());

    {
        Machine mc(CpuModel::Timing, *wl, SimMode::SE, 4);
        mc.sim.restore(path);
        Artifacts c = mc.finish();
        expectSameArtifacts(a, c);
        CommitTrace expected(trace_a.begin() +
                                 (std::ptrdiff_t)trace_len_at_ckpt,
                             trace_a.end());
        EXPECT_EQ(expected, mc.trace);
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, AutoCheckpointPeriodic)
{
    // Periodic auto-checkpoints are taken from the run loop; the last
    // one written before completion must itself restore correctly.
    Machine ma(CpuModel::Atomic);
    Artifacts a = ma.finish();

    std::string prefix = ::testing::TempDir() + "/g5p_auto";
    Tick period = a.finalTick / 3;
    ASSERT_GT(period, 0u);

    // Clear leftovers from any previous (failed) run first.
    {
        namespace fs = std::filesystem;
        std::string stem = fs::path(prefix).filename().string();
        for (const auto &ent :
             fs::directory_iterator(fs::path(prefix).parent_path())) {
            std::string name = ent.path().filename().string();
            if (name.rfind(stem + "-", 0) == 0)
                fs::remove(ent.path());
        }
    }

    std::vector<std::string> written;
    {
        Machine mb(CpuModel::Atomic);
        sim::RunOptions run;
        run.autoCheckpointPeriod = period;
        run.autoCheckpointPrefix = prefix;
        mb.sim.configure(run);
        Artifacts b = mb.finish();
        EXPECT_EQ(a.result, b.result);
        EXPECT_EQ(a.insts, b.insts);
        // Auto-checkpoints land at the first quiescent tick at or
        // after each period boundary; collect whatever was written.
        namespace fs = std::filesystem;
        std::string stem = fs::path(prefix).filename().string();
        for (const auto &ent :
             fs::directory_iterator(fs::path(prefix).parent_path())) {
            std::string name = ent.path().filename().string();
            if (name.rfind(stem + "-", 0) == 0 &&
                name.size() > 5 &&
                name.compare(name.size() - 5, 5, ".ckpt") == 0) {
                written.push_back(ent.path().string());
            }
        }
        std::sort(written.begin(), written.end(),
                  [&](const std::string &x, const std::string &y) {
                      auto tick = [&](const std::string &p) {
                          std::string n =
                              fs::path(p).filename().string();
                          return std::stoull(n.substr(
                              stem.size() + 1,
                              n.size() - stem.size() - 6));
                      };
                      return tick(x) < tick(y);
                  });
    }
    ASSERT_GE(written.size(), 2u) << "expected periodic checkpoints";

    {
        Machine mc(CpuModel::Atomic);
        mc.sim.restore(written.back());
        Artifacts c = mc.finish();
        EXPECT_EQ(a.result, c.result);
        EXPECT_EQ(a.insts, c.insts);
        EXPECT_EQ(a.memDigest, c.memDigest);
        EXPECT_EQ(a.stats, c.stats);
    }
    for (const auto &path : written)
        std::remove(path.c_str());
}

TEST(CheckpointResume, UnknownSectionWarnsAndRestores)
{
    // Graceful degradation: sections this machine doesn't know are
    // skipped with a warning, not fatal.
    Machine ma(CpuModel::Atomic);
    Artifacts a = ma.finish();

    sim::CheckpointOut out;
    {
        Machine mb(CpuModel::Atomic);
        mb.system.run(a.finalTick / 2);
        ASSERT_TRUE(mb.sim.advanceToQuiescence());
        mb.sim.takeCheckpoint(out);
    }
    std::string text = out.toText() +
                       "\n[system.flux_capacitor]\ngigawatts=1.21\n";
    {
        Machine mc(CpuModel::Atomic);
        auto in = sim::CheckpointIn::fromText(text);
        mc.sim.restoreCheckpoint(in);
        Artifacts c = mc.finish();
        EXPECT_EQ(a.result, c.result);
        EXPECT_EQ(a.insts, c.insts);
    }
}

TEST(CheckpointResume, MissingSectionKeepsFreshState)
{
    // A checkpoint missing a component's section restores everything
    // else; the component keeps its freshly built (cold) state. For
    // Atomic CPUs caches are timing-neutral, so the architectural
    // outcome is unchanged.
    Machine ma(CpuModel::Atomic);
    Artifacts a = ma.finish();

    sim::CheckpointOut out;
    {
        Machine mb(CpuModel::Atomic);
        mb.system.run(a.finalTick / 2);
        ASSERT_TRUE(mb.sim.advanceToQuiescence());
        mb.sim.takeCheckpoint(out);
    }

    // Strip the L1 icache section from the text form.
    std::istringstream is(out.toText());
    std::ostringstream os;
    std::string line;
    bool dropping = false;
    while (std::getline(is, line)) {
        if (!line.empty() && line.front() == '[')
            dropping = line.rfind("[system.cpu0.icache", 0) == 0;
        if (!dropping)
            os << line << "\n";
    }
    {
        Machine mc(CpuModel::Atomic);
        auto in = sim::CheckpointIn::fromText(os.str());
        mc.sim.restoreCheckpoint(in);
        Artifacts c = mc.finish();
        EXPECT_EQ(a.result, c.result);
        EXPECT_EQ(a.insts, c.insts);
    }
}

} // namespace
