/**
 * @file
 * PR 9 dispatch-table suite: the devirtualized event dispatch must be
 * an *observationally invisible* optimization. Three layers:
 *
 *  - EventDispatch unit tests against a private table instance:
 *    dense kind assignment, per-handler idempotence, the same-name
 *    collision contract, and table overflow — without poisoning the
 *    process-global table the real queues dispatch through.
 *
 *  - The fallback batching contract (PR 6 × PR 9): a pending
 *    fallback-kind event (an out-of-tree Event subclass that never
 *    registered a handler) must make batchingAllowed() refuse, and
 *    the refusal must lift the moment the last such event leaves the
 *    queue.
 *
 *  - Determinism: same seed, table dispatch vs. forced-virtual
 *    dispatch, byte-identical stats text (plus architectural outcome)
 *    for all four CPU models and for a 4-core Timing coherence
 *    stress. This is the "preserving bit-identical service order"
 *    half of the PR's acceptance bar.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/sim_error.hh"
#include "mem/mem_tester.hh"
#include "os/system.hh"
#include "sim/event_dispatch.hh"
#include "sim/eventq.hh"
#include "sim/simulator.hh"

using namespace g5p;
using namespace g5p::os;

namespace
{

// ---------------------------------------------------------------
// EventDispatch table contracts (private instance).
// ---------------------------------------------------------------

void handlerA(sim::Event &) {}
void handlerB(sim::Event &) {}

/** Family of distinct function pointers for the overflow test. */
template <std::size_t N>
void
numberedHandler(sim::Event &)
{
}

/** Register @p Count distinct handlers into @p d, returning kinds. */
template <std::size_t... I>
std::vector<sim::EventKind>
registerMany(sim::EventDispatch &d, std::index_sequence<I...>)
{
    return {d.registerKind("kind" + std::to_string(I),
                           &numberedHandler<I>)...};
}

TEST(EventDispatchTable, RegistrationIsDenseAndIdempotent)
{
    sim::EventDispatch d;
    EXPECT_EQ(d.numKinds(), 1u); // fallback slot
    EXPECT_EQ(d.kindName(sim::fallbackKind), "fallback");

    sim::EventKind a = d.registerKind("a", &handlerA);
    sim::EventKind b = d.registerKind("b", &handlerB);
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
    EXPECT_EQ(d.numKinds(), 3u);
    EXPECT_EQ(d.handler(a), &handlerA);
    EXPECT_EQ(d.handler(b), &handlerB);
    EXPECT_EQ(d.kindName(a), "a");
    EXPECT_EQ(d.kindName(b), "b");

    // Re-registration of the same handler is idempotent — same kind,
    // no new slot — even under a different name.
    EXPECT_EQ(d.registerKind("a", &handlerA), a);
    EXPECT_EQ(d.registerKind("a-again", &handlerA), a);
    EXPECT_EQ(d.numKinds(), 3u);
}

TEST(EventDispatchTable, SameNameDifferentHandlerCollides)
{
    sim::EventDispatch d;
    d.registerKind("tick", &handlerA);
    // Kind names are identities: binding a second handler under an
    // existing name is a programming error, not a silent re-bind.
    EXPECT_THROW(d.registerKind("tick", &handlerB),
                 InvariantError);
}

TEST(EventDispatchTable, OverflowThrowsInsteadOfDegrading)
{
    sim::EventDispatch d;
    // Slots 1..255 (0 is the reserved fallback) accept distinct
    // handlers; the 256th distinct registration must throw.
    auto kinds =
        registerMany(d, std::make_index_sequence<255>{});
    EXPECT_EQ(kinds.size(), 255u);
    EXPECT_EQ(d.numKinds(), 256u);
    EXPECT_THROW(d.registerKind("one-too-many", &handlerA),
                 InvariantError);
    // The failed registration must not have clobbered anything.
    EXPECT_EQ(d.numKinds(), 256u);
    EXPECT_EQ(d.handler(kinds.back()), &numberedHandler<254>);
}

TEST(EventDispatchTable, FallbackSlotRoutesThroughVirtualProcess)
{
    // The reserved kind-0 slot is pre-wired to call process(), so a
    // queue can dispatch *every* event through the table uniformly.
    class Probe : public sim::Event
    {
      public:
        explicit Probe(int &hits) : hits_(hits) {}
        void process() override { ++hits_; }

      private:
        int &hits_;
    };

    sim::EventDispatch d;
    int hits = 0;
    Probe p(hits);
    d.invoke(sim::fallbackKind, p);
    EXPECT_EQ(hits, 1);
}

TEST(EventDispatchTable, InTreeWrappersCarryRegisteredKinds)
{
    // The migrated wrappers must never be fallback-kind: that would
    // silently re-virtualize the hot path *and* disable batching.
    sim::EventFunctionWrapper fn([] {}, "probe");
    EXPECT_NE(fn.kind(), sim::fallbackKind);
    EXPECT_NE(sim::EventDispatch::global().handler(fn.kind()),
              sim::EventDispatch::global().handler(sim::fallbackKind));
}

// ---------------------------------------------------------------
// Fallback-kind events vs. the PR 6 batching contract.
// ---------------------------------------------------------------

/** Out-of-tree-style event: virtual process(), never calls setKind. */
class ForeignEvent : public sim::Event
{
  public:
    explicit ForeignEvent(int &fired) : fired_(fired) {}
    void process() override { ++fired_; }

  private:
    int &fired_;
};

TEST(DispatchBatching, PendingFallbackEventRefusesBatching)
{
    sim::EventQueue q;
    ASSERT_TRUE(q.batchingAllowed());
    EXPECT_EQ(q.numFallbackPending(), 0u);

    // Kind-tagged events leave batching alone.
    int wrapped_fired = 0;
    sim::EventFunctionWrapper wrapped([&] { ++wrapped_fired; },
                                      "wrapped");
    q.schedule(wrapped, 10);
    EXPECT_TRUE(q.batchingAllowed());

    // A pending fallback-kind event must refuse batching: the
    // batching contract was audited only for in-tree handlers, and
    // an unknown process() override may observe curTick mid-batch.
    int foreign_fired = 0;
    ForeignEvent foreign(foreign_fired);
    q.schedule(foreign, 20);
    EXPECT_FALSE(q.batchingAllowed());
    EXPECT_EQ(q.numFallbackPending(), 1u);

    // Descheduling it lifts the refusal immediately.
    q.deschedule(foreign);
    EXPECT_TRUE(q.batchingAllowed());
    EXPECT_EQ(q.numFallbackPending(), 0u);

    // ... and so does servicing it.
    q.schedule(foreign, 20);
    ForeignEvent foreign2(foreign_fired);
    q.schedule(foreign2, 30);
    EXPECT_EQ(q.numFallbackPending(), 2u);
    q.serviceUntil(25);
    EXPECT_EQ(foreign_fired, 1);
    EXPECT_FALSE(q.batchingAllowed()) << "one fallback still pending";
    q.serviceUntil(100);
    EXPECT_EQ(foreign_fired, 2);
    EXPECT_EQ(wrapped_fired, 1);
    EXPECT_TRUE(q.batchingAllowed());

    // setBatchingAllowed(false) still composes with the fallback
    // count (the run loop's own refusal is independent).
    q.setBatchingAllowed(false);
    EXPECT_FALSE(q.batchingAllowed());
    q.setBatchingAllowed(true);
    EXPECT_TRUE(q.batchingAllowed());
}

TEST(DispatchBatching, ClearResetsFallbackCount)
{
    sim::EventQueue q;
    int fired = 0;
    ForeignEvent a(fired), b(fired);
    q.schedule(a, 10);
    q.schedule(b, 20);
    EXPECT_EQ(q.numFallbackPending(), 2u);
    q.clear();
    EXPECT_EQ(q.numFallbackPending(), 0u);
    EXPECT_TRUE(q.batchingAllowed());
}

// ---------------------------------------------------------------
// Determinism: table dispatch vs. forced-virtual, byte-identical.
// ---------------------------------------------------------------

class DispatchWorkload : public GuestWorkload
{
  public:
    std::string name() const override { return "dispatch-mix"; }

    void
    emit(isa::Assembler &as, unsigned num_cpus,
         SimMode mode) const override
    {
        using namespace g5p::isa;
        // Arithmetic + aliasing stores + data-dependent branches:
        // enough event traffic (fetch, cache, writeback) that a
        // service-order difference between dispatch modes would
        // surface in the stats within a few thousand instructions.
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 600);
        as.li(RegT2, 0x300000);
        as.label("loop");
        as.mul(RegT0, RegS0, RegS0);
        as.xor_(RegT0, RegT0, RegS1);
        as.andi(RegT1, RegS0, 63);
        as.slli(RegT1, RegT1, 3);
        as.add(RegT1, RegT1, RegT2);
        as.sd(RegT0, RegT1, 0);
        as.ld(RegT0, RegT1, 0);
        as.andi(RegT4, RegS0, 1);
        as.beq(RegT4, RegZero, "even");
        as.add(RegS1, RegS1, RegT0);
        as.j("next");
        as.label("even");
        as.sub(RegS1, RegS1, RegT0);
        as.label("next");
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        as.li(RegT0, (std::int64_t)GuestWorkload::resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();
    }
};

/** Everything an observer could see: stats text + arch outcome. */
struct RunFingerprint
{
    std::string stats;
    std::uint64_t result = 0;
    std::uint64_t insts = 0;
    std::uint64_t memDigest = 0;
    std::string console;

    bool
    operator==(const RunFingerprint &o) const
    {
        return stats == o.stats && result == o.result &&
               insts == o.insts && memDigest == o.memDigest &&
               console == o.console;
    }
};

RunFingerprint
runSystem(CpuModel model, bool force_virtual)
{
    DispatchWorkload wl;
    sim::Simulator sim("system");
    SystemConfig cfg;
    cfg.cpuModel = model;
    System system(sim, cfg, wl);

    sim::RunOptions opts;
    opts.forceVirtualDispatch = force_virtual;
    auto res = system.run(opts, 5'000'000'000'000ULL);
    EXPECT_EQ(res.cause, sim::ExitCause::Finished)
        << cpuModelName(model)
        << (force_virtual ? " (virtual)" : " (table)");

    RunFingerprint fp;
    std::ostringstream os;
    sim.dumpStats(os);
    fp.stats = os.str();
    fp.result = system.result();
    fp.insts = system.totalInsts();
    fp.memDigest = system.physmem().contentDigest();
    fp.console = system.process().emulator().consoleOutput();
    return fp;
}

class DispatchDeterminism : public ::testing::TestWithParam<CpuModel>
{};

TEST_P(DispatchDeterminism, TableMatchesVirtualBitIdentically)
{
    RunFingerprint table = runSystem(GetParam(), false);
    RunFingerprint virt = runSystem(GetParam(), true);
    // Stats text first: it subsumes event counts, tick totals, cache
    // traffic — any service-order skew shows up here as a diff.
    EXPECT_EQ(table.stats, virt.stats) << cpuModelName(GetParam());
    EXPECT_TRUE(table == virt) << cpuModelName(GetParam());
    EXPECT_FALSE(table.stats.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Models, DispatchDeterminism,
    ::testing::Values(CpuModel::Atomic, CpuModel::Timing,
                      CpuModel::Minor, CpuModel::O3),
    [](const auto &info) {
        return std::string(cpuModelName(info.param));
    });

// ---------------------------------------------------------------
// 4-core Timing coherence stress, both dispatch modes.
// ---------------------------------------------------------------

std::string
runCoherenceStress(bool force_virtual)
{
    sim::Simulator sim("tester");
    mem::MemTesterParams p;
    p.numCores = 4;
    p.seed = 7;
    p.opsPerCore = 400;
    p.atomicMode = false;
    mem::MemTester tester(sim, "mt", p);

    sim::RunOptions opts;
    opts.forceVirtualDispatch = force_virtual;
    sim.configure(opts);
    sim::SimResult res = sim.run();
    EXPECT_EQ(res.cause, sim::ExitCause::Finished)
        << sim::exitCauseName(res.cause) << "\n"
        << sim.diagnosticDump();
    EXPECT_TRUE(tester.allDone());
    EXPECT_TRUE(tester.violations().empty());

    std::ostringstream os;
    sim.dumpStats(os);
    return os.str();
}

TEST(DispatchDeterminismMulti, FourCoreTimingStressMatches)
{
    std::string table = runCoherenceStress(false);
    std::string virt = runCoherenceStress(true);
    EXPECT_FALSE(table.empty());
    EXPECT_EQ(table, virt);
}

} // namespace
