/**
 * @file
 * Self-observability layer: the profiler's event attribution, the
 * Chrome-trace and JSONL exports, the RunOptions run-control surface
 * (including the deprecated-shim equivalence), and the interplay of
 * profiling with checkpoint/restore.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/telemetry.hh"
#include "os/system.hh"
#include "sim/profiler.hh"
#include "sim/run_options.hh"
#include "workloads/workload.hh"

using namespace g5p;
using namespace g5p::isa;
using namespace g5p::os;

namespace
{

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON validator: enough to prove the
// trace writer emits *syntactically* well-formed JSON, including
// escaping, without third-party dependencies.
// ---------------------------------------------------------------------

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value(0))
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value(int depth)
    {
        if (depth > 64 || pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object(depth);
          case '[': return array(depth);
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object(int depth)
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value(depth + 1))
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool
    array(int depth)
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value(depth + 1))
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '"') { ++pos_; return true; }
            if ((unsigned char)c < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                (unsigned char)s_[pos_]))
                            return false;
                    }
                } else if (!strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit((unsigned char)s_[pos_]) ||
                strchr(".eE+-", s_[pos_])))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() && std::isspace((unsigned char)s_[pos_]))
            ++pos_;
    }

    std::string s_; // by value: callers pass temporaries
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Machine fixture (same loop workload shape the robustness suite
// uses: stores, dependent loads, a branch).
// ---------------------------------------------------------------------

class LoopWorkload : public GuestWorkload
{
  public:
    std::string name() const override { return "prof-loop"; }

    void
    emit(Assembler &as, unsigned num_cpus, SimMode mode) const override
    {
        as.label("_start");
        as.li(RegS1, 0);
        as.li(RegS0, 0);
        as.li(RegT3, 800);
        as.li(RegT2, 0x200000);
        as.label("loop");
        as.andi(RegT0, RegS0, 255);
        as.slli(RegT0, RegT0, 3);
        as.add(RegT0, RegT0, RegT2);
        as.sd(RegS0, RegT0, 0);
        as.ld(RegT1, RegT0, 0);
        as.add(RegS1, RegS1, RegT1);
        as.addi(RegS0, RegS0, 1);
        as.blt(RegS0, RegT3, "loop");
        as.li(RegT0, (std::int64_t)resultAddr);
        as.sd(RegS1, RegT0, 0);
        as.halt();
    }
};

const LoopWorkload &
loopWorkload()
{
    static LoopWorkload wl;
    return wl;
}

struct Machine
{
    sim::Simulator sim{"system"};
    System system;

    explicit Machine(CpuModel model = CpuModel::Timing)
        : system(sim, makeCfg(model), loopWorkload())
    {
    }

    static SystemConfig
    makeCfg(CpuModel model)
    {
        SystemConfig cfg;
        cfg.cpuModel = model;
        cfg.mode = SimMode::SE;
        cfg.numCpus = 1;
        return cfg;
    }
};

sim::ProfilerConfig
traceConfig()
{
    sim::ProfilerConfig pc;
    pc.enabled = true;
    pc.traceSlices = true;
    return pc;
}

std::string
tmpPath(const std::string &tag)
{
    return ::testing::TempDir() + "/g5p_prof_" + tag;
}

/** Sorted (class name -> count), the deterministic part of a run. */
std::map<std::string, std::uint64_t>
countsByClass(const sim::Profiler &prof)
{
    std::map<std::string, std::uint64_t> counts;
    for (const auto &cls : prof.eventClasses())
        counts[cls.name] = cls.count;
    return counts;
}

// ---------------------------------------------------------------------
// Attribution.
// ---------------------------------------------------------------------

TEST(Profiler, AttributesEveryServicedEvent)
{
    Machine m;
    sim::Profiler prof(traceConfig());
    m.sim.attachProfiler(prof);
    auto res = m.system.run();
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);
    prof.disarm();

    EXPECT_GT(prof.totalEvents(), 0u);
    EXPECT_FALSE(prof.eventClasses().empty());

    // Counts are exact: every serviced event lands in exactly one
    // class, and all attributed wall time is non-negative.
    std::uint64_t total = 0;
    for (const auto &cls : prof.eventClasses()) {
        total += cls.count;
        EXPECT_GE(cls.wallNs, 0.0) << cls.name;
        if (!cls.owner.empty())
            EXPECT_EQ(cls.owner + "." + cls.type, cls.name);
        else
            EXPECT_EQ(cls.type, cls.name);
    }
    EXPECT_EQ(total, prof.totalEvents());

    // The timing CPU's named member events must show up as classes
    // owned by "cpu0", and cpu0 must be a registered owner track.
    auto counts = countsByClass(prof);
    EXPECT_TRUE(counts.count("cpu0.tick")) << "no cpu0.tick class";
    bool cpu0_owner = false;
    for (const auto &owner : prof.owners())
        cpu0_owner |= owner.name == "cpu0";
    EXPECT_TRUE(cpu0_owner);

    // Trace mode records a slice per event (none dropped here).
    EXPECT_EQ(prof.slices().size() + prof.droppedSlices(),
              prof.totalEvents());
    EXPECT_EQ(prof.droppedSlices(), 0u);
}

TEST(Profiler, CountsDeterministicAcrossIdenticalRuns)
{
    std::map<std::string, std::uint64_t> first, second;
    std::uint64_t events_a = 0, events_b = 0;
    {
        Machine m;
        sim::Profiler prof(traceConfig());
        m.sim.attachProfiler(prof);
        ASSERT_EQ(m.system.run().cause, sim::ExitCause::Finished);
        first = countsByClass(prof);
        events_a = prof.totalEvents();
    }
    {
        Machine m;
        sim::Profiler prof(traceConfig());
        m.sim.attachProfiler(prof);
        ASSERT_EQ(m.system.run().cause, sim::ExitCause::Finished);
        second = countsByClass(prof);
        events_b = prof.totalEvents();
    }
    EXPECT_EQ(events_a, events_b);
    EXPECT_EQ(first, second);
}

TEST(Profiler, BatchModeCountsMatchTraceModeCounts)
{
    // Batch mode approximates per-class *time* but counts must stay
    // exact — identical to what trace mode sees.
    std::map<std::string, std::uint64_t> batched, traced;
    {
        Machine m;
        sim::ProfilerConfig pc;
        pc.enabled = true;
        pc.batchEvents = 32;
        sim::Profiler prof(pc);
        m.sim.attachProfiler(prof);
        ASSERT_EQ(m.system.run().cause, sim::ExitCause::Finished);
        batched = countsByClass(prof);
        EXPECT_TRUE(prof.slices().empty());
    }
    {
        Machine m;
        sim::Profiler prof(traceConfig());
        m.sim.attachProfiler(prof);
        ASSERT_EQ(m.system.run().cause, sim::ExitCause::Finished);
        traced = countsByClass(prof);
    }
    EXPECT_EQ(batched, traced);
}

TEST(Profiler, OwnedProfilerViaRunOptions)
{
    Machine m;
    sim::RunOptions run;
    run.profiler.enabled = true;
    run.profiler.batchEvents = 16;
    auto res = m.system.run(run);
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);

    ASSERT_NE(m.sim.profiler(), nullptr);
    EXPECT_GT(m.sim.profiler()->totalEvents(), 0u);
    EXPECT_FALSE(m.sim.profiler()->counterSamples().empty());
}

TEST(Profiler, DisabledProfilerIsAbsent)
{
    Machine m;
    sim::RunOptions run; // profiler.enabled defaults to false
    auto res = m.system.run(run);
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);
    EXPECT_EQ(m.sim.profiler(), nullptr);
}

// ---------------------------------------------------------------------
// Exports.
// ---------------------------------------------------------------------

TEST(Profiler, ChromeTraceIsWellFormedJson)
{
    Machine m;
    sim::Profiler prof(traceConfig());
    m.sim.attachProfiler(prof);
    ASSERT_EQ(m.system.run().cause, sim::ExitCause::Finished);
    prof.disarm();

    std::ostringstream os;
    core::writeChromeTrace(os, prof, "Timing", &m.sim);
    std::string text = os.str();

    JsonValidator v(text);
    EXPECT_TRUE(v.valid()) << "trace is not well-formed JSON";

    // Structural spot checks: slices, metadata, counters, and the
    // stats snapshot all made it in.
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(text.find("\"cpu0.tick\""), std::string::npos);
    EXPECT_NE(text.find("\"attribution\""), std::string::npos);
    EXPECT_NE(text.find("\"stats\""), std::string::npos);
}

TEST(Profiler, TraceEscapesHostileNames)
{
    sim::Profiler prof(traceConfig());
    prof.arm();
    prof.noteInstant("quote\"back\\slash", "line\nbreak\ttab");
    prof.disarm();

    std::ostringstream os;
    core::writeChromeTrace(os, prof, "hostile \"label\"");
    JsonValidator v(os.str());
    EXPECT_TRUE(v.valid());
}

TEST(Profiler, MetricsStreamIsJsonl)
{
    std::string path = tmpPath("metrics.jsonl");
    std::remove(path.c_str());
    {
        Machine m;
        sim::ProfilerConfig pc;
        pc.enabled = true;
        pc.batchEvents = 16;
        pc.metricsPath = path;
        pc.metricsEveryEvents = 64;
        sim::Profiler prof(pc);
        m.sim.attachProfiler(prof);
        ASSERT_EQ(m.system.run().cause, sim::ExitCause::Finished);
        prof.disarm();
    }
    std::ifstream is(path);
    ASSERT_TRUE(is.good()) << "no metrics stream at " << path;
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        ++lines;
        JsonValidator v(line);
        EXPECT_TRUE(v.valid()) << "bad JSONL line: " << line;
        EXPECT_NE(line.find("\"eps\""), std::string::npos);
        EXPECT_NE(line.find("\"queue_depth\""), std::string::npos);
        EXPECT_NE(line.find("\"slowdown\""), std::string::npos);
    }
    EXPECT_GT(lines, 0u);
}

TEST(Profiler, HostProfileSharesSumToOne)
{
    Machine m;
    sim::Profiler prof(traceConfig());
    m.sim.attachProfiler(prof);
    ASSERT_EQ(m.system.run().cause, sim::ExitCause::Finished);
    prof.disarm();

    core::HostProfile hp = core::hostProfileFromSelf(prof);
    ASSERT_FALSE(hp.rows.empty());
    EXPECT_EQ(hp.unit, "ns");
    EXPECT_NEAR(hp.cumulativeShare(hp.rows.size()), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(hp.hottestShare(), hp.rows.front().share);
    for (std::size_t i = 1; i < hp.rows.size(); ++i)
        EXPECT_LE(hp.rows[i].weight, hp.rows[i - 1].weight);
}

// ---------------------------------------------------------------------
// Profiling across checkpoint/restore.
// ---------------------------------------------------------------------

TEST(Profiler, SurvivesCheckpointAndMarksIt)
{
    std::string path = tmpPath("ckpt_span.ckpt");

    Machine ref;
    auto full = ref.system.run();
    ASSERT_EQ(full.cause, sim::ExitCause::Finished);
    Tick half = full.tick / 2;

    Machine m;
    sim::Profiler prof(traceConfig());
    m.sim.attachProfiler(prof);
    auto part = m.system.run(half);
    ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
    m.sim.checkpoint(path);
    auto rest = m.system.run();
    ASSERT_EQ(rest.cause, sim::ExitCause::Finished);
    EXPECT_EQ(m.system.result(), ref.system.result());
    prof.disarm();

    bool saw_run = false, saw_ckpt = false;
    for (const auto &span : prof.spans()) {
        saw_run |= span.name == "run";
        saw_ckpt |= span.name == "checkpoint";
    }
    EXPECT_TRUE(saw_run);
    EXPECT_TRUE(saw_ckpt);
    EXPECT_GT(prof.totalEvents(), 0u);
}

TEST(Profiler, RestoredRunProfilesFromTheCheckpoint)
{
    std::string path = tmpPath("restore_span.ckpt");

    Machine ref;
    auto full = ref.system.run();
    ASSERT_EQ(full.cause, sim::ExitCause::Finished);
    Tick half = full.tick / 2;

    {
        Machine a;
        auto part = a.system.run(half);
        ASSERT_EQ(part.cause, sim::ExitCause::TickLimit);
        a.sim.checkpoint(path);
    }

    Machine b;
    sim::Profiler prof(traceConfig());
    b.sim.attachProfiler(prof);
    b.sim.restore(path);
    auto res = b.system.run();
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);
    EXPECT_EQ(b.system.result(), ref.system.result());
    EXPECT_EQ(res.tick, full.tick);
    prof.disarm();

    bool saw_restore = false;
    for (const auto &span : prof.spans())
        saw_restore |= span.name == "restore";
    EXPECT_TRUE(saw_restore);

    // Only the resumed half is profiled: every slice tick is in the
    // restored run's tick range.
    EXPECT_GT(prof.totalEvents(), 0u);
    EXPECT_GE(prof.firstTick(), half);
}

// ---------------------------------------------------------------------
// RunOptions: the one run-control surface.
// ---------------------------------------------------------------------

TEST(RunOptionsApi, WatchdogViaConfigure)
{
    sim::Simulator simr("system");
    auto &q = simr.eventq();
    sim::EventFunctionWrapper ev(
        [&] { q.schedule(ev, q.curTick()); }, "spin");
    q.schedule(ev, 0);

    sim::RunOptions run;
    run.supervise = true;
    run.watchdog.livelockEvents = 64;
    simr.configure(run);
    auto res = simr.run();
    EXPECT_EQ(res.cause, sim::ExitCause::Livelock);
    EXPECT_EQ(simr.runOptions().watchdog.livelockEvents, 64u);

    if (ev.scheduled())
        q.deschedule(ev);
}

TEST(RunOptionsApi, ConfigureDoesNotPerturbTheRun)
{
    Machine ref;
    auto full = ref.system.run();
    ASSERT_EQ(full.cause, sim::ExitCause::Finished);

    Machine m;
    sim::RunOptions run;
    run.supervise = true;
    run.watchdog.livelockEvents = 1u << 20;
    run.watchdog.maxEvents = 1ull << 40;
    run.profiler.enabled = true;
    run.profiler.batchEvents = 8;
    auto res = m.system.run(run);
    ASSERT_EQ(res.cause, sim::ExitCause::Finished);

    EXPECT_EQ(m.system.result(), ref.system.result());
    EXPECT_EQ(res.tick, full.tick);
}

TEST(RunOptionsApi, StatsVisitorMatchesTextDump)
{
    // The text dump is now just one visitor over the stats tree;
    // cross-check it against the raw (name, value) collection.
    Machine m;
    ASSERT_EQ(m.system.run().cause, sim::ExitCause::Finished);

    auto values = core::collectStatValues(m.sim);
    ASSERT_FALSE(values.empty());

    std::ostringstream dump;
    m.sim.dumpStats(dump);
    std::string text = dump.str();
    std::size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, values.size());
    for (const auto &[dotted, value] : values) {
        std::ostringstream want;
        want << dotted << " " << value << " ";
        EXPECT_NE(text.find(want.str()), std::string::npos)
            << "dump is missing " << want.str();
    }
}

} // namespace
